//! The Partition algorithm of Suri and Vassilvitskii (Section 2.1).
//!
//! Nodes are hashed into `b` disjoint groups; there is one reducer per
//! unordered triple of distinct groups `{i, j, k}` and each edge is sent to
//! every reducer whose triple contains the groups of both endpoints. Each
//! reducer runs the serial triangle algorithm on its subgraph.
//!
//! Triangles whose nodes span fewer than three distinct groups would be found
//! by several reducers; as in \[19\], extra care de-duplicates them — here a
//! reducer emits such a triangle only if its triple is the *canonical* triple
//! for that triangle (the group multiset completed with the smallest unused
//! group numbers), which costs the same extra bookkeeping the paper mentions.

use crate::result::RunStats;
use crate::serial::triangles::enumerate_triangles_with_order_into;
use crate::sink::InstanceSink;
use subgraph_graph::{DataGraph, Edge, IdOrder, NodeId};
use subgraph_mapreduce::{EngineConfig, MapContext, Pipeline, ReduceContext, Round};
use subgraph_pattern::Instance;

/// Runs the Partition algorithm with `b` node groups as a declarative
/// single-round [`Pipeline`], streaming each triangle into `sink`.
pub(crate) fn run_partition_triangles_into(
    graph: &DataGraph,
    b: usize,
    config: &EngineConfig,
    sink: &mut dyn InstanceSink,
) -> RunStats {
    assert!(b >= 3, "Partition needs at least 3 groups");
    let num_nodes = graph.num_nodes();
    let group = move |v: NodeId| -> u32 { hash_group(v, b) };

    let mapper = move |edge: &Edge, ctx: &mut MapContext<[u32; 3], Edge>| {
        let gu = group(edge.lo());
        let gv = group(edge.hi());
        for i in 0..b as u32 {
            for j in (i + 1)..b as u32 {
                for k in (j + 1)..b as u32 {
                    let triple = [i, j, k];
                    if triple.contains(&gu) && triple.contains(&gv) {
                        ctx.emit(triple, *edge);
                    }
                }
            }
        }
    };

    let reducer = move |key: &[u32; 3], edges: &[Edge], ctx: &mut ReduceContext<Instance>| {
        let local = DataGraph::from_edges(num_nodes, edges.iter().map(|e| e.endpoints()));
        // The local enumeration streams straight through to the round's
        // output: no per-reducer triangle buffer exists.
        let work = {
            let mut filter = crate::sink::FnSink::new(|instance: Instance| {
                // De-duplicate triangles that span fewer than three groups:
                // emit only from the canonical reducer for the group set.
                let groups: Vec<u32> = instance.nodes().iter().map(|&v| group(v)).collect();
                if canonical_triple(&groups, b) == *key {
                    ctx.emit(instance);
                }
            });
            enumerate_triangles_with_order_into(&local, &IdOrder, &mut filter).work
        };
        ctx.add_work(work);
    };

    let report = crate::stream::run_streamed_with_sink(
        Pipeline::new().round(Round::new("partition", mapper, reducer).arena()),
        graph.edges(),
        config,
        sink,
    );
    RunStats::from_pipeline(report)
}

/// Collect-mode wrapper over [`run_partition_triangles_into`] (tests and
/// in-crate comparisons).
#[cfg(test)]
pub(crate) fn run_partition_triangles(
    graph: &DataGraph,
    b: usize,
    config: &EngineConfig,
) -> crate::result::MapReduceRun {
    let mut collected = crate::sink::CollectSink::new();
    let stats = run_partition_triangles_into(graph, b, config, &mut collected);
    stats.into_run(collected.into_items())
}

/// The canonical reducer triple for a triangle whose nodes fall into `groups`:
/// the distinct groups, padded with the smallest group numbers not already
/// present, sorted ascending.
fn canonical_triple(groups: &[u32], b: usize) -> [u32; 3] {
    let mut distinct: Vec<u32> = groups.to_vec();
    distinct.sort_unstable();
    distinct.dedup();
    let mut filler = 0u32;
    while distinct.len() < 3 {
        if !distinct.contains(&filler) {
            distinct.push(filler);
        }
        filler += 1;
        if filler as usize > b {
            break;
        }
    }
    distinct.sort_unstable();
    [distinct[0], distinct[1], distinct[2]]
}

fn hash_group(v: NodeId, b: usize) -> u32 {
    let mut x = (v as u64).wrapping_add(0x51ab_de3a_77c0_ffee);
    x = (x ^ (x >> 33)).wrapping_mul(0xff51_afd7_ed55_8ccd);
    x = (x ^ (x >> 33)).wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    x ^= x >> 33;
    (x % b as u64) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::triangles::enumerate_triangles_serial;
    use subgraph_graph::generators;
    use subgraph_shares::counting::partition_triangle_replication;

    fn config() -> EngineConfig {
        EngineConfig::with_threads(4)
    }

    #[test]
    fn finds_every_triangle_exactly_once() {
        for seed in 0..3 {
            let g = generators::gnm(80, 500, seed);
            let serial = enumerate_triangles_serial(&g);
            for b in [3usize, 5, 8] {
                let run = run_partition_triangles(&g, b, &config());
                assert_eq!(run.count(), serial.count(), "b={b} seed={seed}");
                assert_eq!(run.duplicates(), 0, "b={b} seed={seed}");
            }
        }
    }

    #[test]
    fn communication_cost_matches_the_formula() {
        // Expected replication per edge: (3/2)(b−1)(b−2)/b, up to the random
        // split of edges into same-group / cross-group.
        let g = generators::gnm(300, 3000, 7);
        for b in [4usize, 6, 10] {
            let run = run_partition_triangles(&g, b, &config());
            let measured = run.metrics.replication_per_input();
            let expected = partition_triangle_replication(b as u64);
            let tolerance = expected * 0.15 + 0.5;
            assert!(
                (measured - expected).abs() < tolerance,
                "b={b}: measured {measured}, formula {expected}"
            );
            // Reducer count is at most C(b,3).
            let max_reducers = b * (b - 1) * (b - 2) / 6;
            assert!(run.metrics.reducers_used <= max_reducers);
        }
    }

    #[test]
    fn triangle_free_graph_yields_nothing_but_still_ships_edges() {
        let g = generators::complete_bipartite(12, 12);
        let run = run_partition_triangles(&g, 4, &config());
        assert_eq!(run.count(), 0);
        assert!(run.metrics.key_value_pairs > 0);
    }

    #[test]
    #[should_panic]
    fn fewer_than_three_groups_rejected() {
        let _ = run_partition_triangles(&generators::complete(4), 2, &config());
    }
}
