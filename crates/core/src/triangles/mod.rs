//! The three single-round map-reduce triangle algorithms compared in
//! Section 2 (Figures 1 and 2).
//!
//! | algorithm | reducers | communication / edge |
//! |---|---|---|
//! | [`partition`] (Suri–Vassilvitskii \[19\]) | `C(b, 3) ≈ b³/6` | `(3/2)(b−1)(b−2)/b ≈ 3b/2` |
//! | [`multiway`] (Section 2.2, plain Afrati–Ullman join) | `b³` | `3b − 2` |
//! | [`bucket_ordered`] (Section 2.3, hash-ordered nodes) | `C(b+2, 3) ≈ b³/6` | `b` |
//!
//! All three run on the instrumented engine of `subgraph-mapreduce`, so the
//! benchmark harness reports *measured* replication per edge next to the
//! formulas above.

pub mod bucket_ordered;
pub mod cascade;
pub mod multiway;
pub mod partition;

#[allow(deprecated)]
pub use bucket_ordered::bucket_ordered_triangles;
#[allow(deprecated)]
pub use cascade::cascade_triangles;
#[allow(deprecated)]
pub use multiway::multiway_triangles;
#[allow(deprecated)]
pub use partition::partition_triangles;
