//! The three single-round map-reduce triangle algorithms compared in
//! Section 2 (Figures 1 and 2).
//!
//! | algorithm | reducers | communication / edge |
//! |---|---|---|
//! | [`partition`] (Suri–Vassilvitskii \[19\]) | `C(b, 3) ≈ b³/6` | `(3/2)(b−1)(b−2)/b ≈ 3b/2` |
//! | [`multiway`] (Section 2.2, plain Afrati–Ullman join) | `b³` | `3b − 2` |
//! | [`bucket_ordered`] (Section 2.3, hash-ordered nodes) | `C(b+2, 3) ≈ b³/6` | `b` |
//!
//! All three run on the instrumented engine of `subgraph-mapreduce`, so the
//! benchmark harness reports *measured* replication per edge next to the
//! formulas above.

pub mod bucket_ordered;
pub mod cascade;
pub mod multiway;
pub mod partition;

// The pre-planner free functions (`bucket_ordered_triangles`,
// `partition_triangles`, `multiway_triangles`, `cascade_triangles`) are gone:
// build an `EnumerationRequest` for the `"triangle"` pattern, force the
// strategy if needed, and `plan()/execute()` (or `run_with_sink()` for
// streaming results). `cascade::wedge_round` remains public for inspecting
// the intermediate wedge stream.
