//! Compact record serialization for the engine's arena shuffle.
//!
//! The map-reduce engine's classic shuffle moves every `(key, value)` pair as
//! a Rust struct inside `Vec<(u64, K, V)>` buckets: ~32 bytes per record for
//! the paper's triangle workloads against a ~10-byte logical payload. The
//! arena shuffle instead serializes records into flat byte buffers, and this
//! crate defines the encoding those buffers use: [`ArenaCodec`], a
//! fixed-format, allocation-free codec with LEB128 varints for integers.
//!
//! The codec is *engine-internal*: encoded bytes never leave the process and
//! are always decoded by the same build that produced them, so there is no
//! versioning, no endianness tag, and decoding malformed input is allowed to
//! panic (the engine only feeds a decoder bytes its own encoder wrote).
//!
//! Keys and values are encoded back to back, so `decode` must consume exactly
//! the bytes `encode` produced — the round-trip property the test suite and
//! the engine's grouping loops both rely on.
//!
//! This crate exists (rather than the trait living in the mapreduce crate)
//! so that `subgraph-graph` can implement the codec for its `Edge` type
//! without depending on the engine: both depend on this leaf crate instead.

/// Appends `value` as an LEB128 varint (7 bits per byte, little groups
/// first, high bit = continuation). Values below 128 cost one byte — the
/// common case for the paper's bucket coordinates and small node ids.
#[inline]
pub fn write_varint(out: &mut Vec<u8>, mut value: u64) {
    while value >= 0x80 {
        out.push((value as u8) | 0x80);
        value >>= 7;
    }
    out.push(value as u8);
}

/// Reads an LEB128 varint written by [`write_varint`], advancing `*pos`.
///
/// # Panics
/// Panics on truncated input or a varint longer than 10 bytes; arena buffers
/// are engine-produced, so either indicates a bug, not bad user data.
#[inline]
pub fn read_varint(buf: &[u8], pos: &mut usize) -> u64 {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = buf[*pos];
        *pos += 1;
        value |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return value;
        }
        shift += 7;
        assert!(shift < 64, "varint exceeds 10 bytes");
    }
}

/// Reads one LEB128 varint from a byte stream — the streaming counterpart of
/// [`read_varint`], used by the engine's spill-run reader where frames arrive
/// from a file instead of a resident buffer.
///
/// Returns `Ok(None)` on a clean end of stream (no byte consumed): a sequence
/// of length-prefixed frames is terminated by EOF at a frame boundary, so the
/// reader distinguishes "no more frames" from a truncated length
/// (`ErrorKind::UnexpectedEof`).
pub fn read_varint_from(read: &mut impl std::io::Read) -> std::io::Result<Option<u64>> {
    let mut value = 0u64;
    let mut shift = 0u32;
    let mut byte = [0u8; 1];
    loop {
        match read.read(&mut byte) {
            Ok(0) => {
                return if shift == 0 {
                    Ok(None)
                } else {
                    Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "stream ended inside a varint",
                    ))
                };
            }
            Ok(_) => {}
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
        value |= u64::from(byte[0] & 0x7f) << shift;
        if byte[0] & 0x80 == 0 {
            return Ok(Some(value));
        }
        shift += 7;
        if shift >= 64 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "varint exceeds 10 bytes",
            ));
        }
    }
}

/// A value that can serialize itself into (and back out of) an arena byte
/// buffer. See the [crate docs](self) for the contract: `decode` must return
/// an equal value and consume exactly the bytes `encode` appended.
pub trait ArenaCodec: Sized {
    /// Appends this value's encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);
    /// Decodes one value from `buf` starting at `*pos`, advancing `*pos`
    /// past the consumed bytes.
    fn decode(buf: &[u8], pos: &mut usize) -> Self;
}

impl ArenaCodec for u8 {
    #[inline]
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(*self);
    }
    #[inline]
    fn decode(buf: &[u8], pos: &mut usize) -> Self {
        let byte = buf[*pos];
        *pos += 1;
        byte
    }
}

impl ArenaCodec for u16 {
    #[inline]
    fn encode(&self, out: &mut Vec<u8>) {
        write_varint(out, u64::from(*self));
    }
    #[inline]
    fn decode(buf: &[u8], pos: &mut usize) -> Self {
        read_varint(buf, pos) as u16
    }
}

impl ArenaCodec for u32 {
    #[inline]
    fn encode(&self, out: &mut Vec<u8>) {
        write_varint(out, u64::from(*self));
    }
    #[inline]
    fn decode(buf: &[u8], pos: &mut usize) -> Self {
        read_varint(buf, pos) as u32
    }
}

impl ArenaCodec for u64 {
    #[inline]
    fn encode(&self, out: &mut Vec<u8>) {
        write_varint(out, *self);
    }
    #[inline]
    fn decode(buf: &[u8], pos: &mut usize) -> Self {
        read_varint(buf, pos)
    }
}

impl ArenaCodec for usize {
    #[inline]
    fn encode(&self, out: &mut Vec<u8>) {
        write_varint(out, *self as u64);
    }
    #[inline]
    fn decode(buf: &[u8], pos: &mut usize) -> Self {
        read_varint(buf, pos) as usize
    }
}

impl ArenaCodec for bool {
    #[inline]
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
    #[inline]
    fn decode(buf: &[u8], pos: &mut usize) -> Self {
        u8::decode(buf, pos) != 0
    }
}

impl<T: ArenaCodec, const N: usize> ArenaCodec for [T; N] {
    #[inline]
    fn encode(&self, out: &mut Vec<u8>) {
        for item in self {
            item.encode(out);
        }
    }
    #[inline]
    fn decode(buf: &[u8], pos: &mut usize) -> Self {
        std::array::from_fn(|_| T::decode(buf, pos))
    }
}

impl<A: ArenaCodec, B: ArenaCodec> ArenaCodec for (A, B) {
    #[inline]
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }
    #[inline]
    fn decode(buf: &[u8], pos: &mut usize) -> Self {
        let a = A::decode(buf, pos);
        let b = B::decode(buf, pos);
        (a, b)
    }
}

impl<A: ArenaCodec, B: ArenaCodec, C: ArenaCodec> ArenaCodec for (A, B, C) {
    #[inline]
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
        self.2.encode(out);
    }
    #[inline]
    fn decode(buf: &[u8], pos: &mut usize) -> Self {
        let a = A::decode(buf, pos);
        let b = B::decode(buf, pos);
        let c = C::decode(buf, pos);
        (a, b, c)
    }
}

impl<T: ArenaCodec> ArenaCodec for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        write_varint(out, self.len() as u64);
        for item in self {
            item.encode(out);
        }
    }
    fn decode(buf: &[u8], pos: &mut usize) -> Self {
        let len = read_varint(buf, pos) as usize;
        (0..len).map(|_| T::decode(buf, pos)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: ArenaCodec + PartialEq + std::fmt::Debug>(value: T) {
        let mut buf = Vec::new();
        value.encode(&mut buf);
        let mut pos = 0;
        let back = T::decode(&buf, &mut pos);
        assert_eq!(back, value);
        assert_eq!(pos, buf.len(), "decode must consume exactly the encoding");
    }

    #[test]
    fn varint_boundaries_round_trip() {
        for value in [
            0u64,
            1,
            0x7f,
            0x80,
            0x3fff,
            0x4000,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            write_varint(&mut buf, value);
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos), value);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn small_values_encode_in_one_byte() {
        let mut buf = Vec::new();
        write_varint(&mut buf, 5);
        assert_eq!(buf, [5]);
        buf.clear();
        write_varint(&mut buf, 127);
        assert_eq!(buf, [127]);
        buf.clear();
        write_varint(&mut buf, 128);
        assert_eq!(buf, [0x80, 1]);
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(0u8);
        round_trip(255u8);
        round_trip(9000u16);
        round_trip(3_000_000u32);
        round_trip(u64::MAX);
        round_trip(usize::MAX);
        round_trip(true);
        round_trip(false);
    }

    #[test]
    fn composites_round_trip() {
        round_trip([1u32, 2, 3]);
        round_trip((7u32, 9u64));
        round_trip((1u8, 2u32, 3u32));
        round_trip(vec![5u32, 0, 1_000_000]);
        round_trip(Vec::<u32>::new());
        round_trip(([0u32, 5, 5], (17u32, 99u32)));
    }

    #[test]
    fn back_to_back_records_decode_in_order() {
        // The arena stores records contiguously; interleaved decode must track.
        let mut buf = Vec::new();
        for i in 0..100u32 {
            ([i, i * 2, i * 3], (i, i + 1)).encode(&mut buf);
        }
        let mut pos = 0;
        for i in 0..100u32 {
            let (key, value) = <([u32; 3], (u32, u32))>::decode(&buf, &mut pos);
            assert_eq!(key, [i, i * 2, i * 3]);
            assert_eq!(value, (i, i + 1));
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    #[should_panic]
    fn truncated_varint_panics() {
        let buf = [0x80u8, 0x80];
        let mut pos = 0;
        let _ = read_varint(&buf, &mut pos);
    }

    #[test]
    fn streaming_varints_match_the_slice_reader() {
        let mut buf = Vec::new();
        let values = [0u64, 1, 127, 128, 0x3fff, u32::MAX as u64, u64::MAX];
        for value in values {
            write_varint(&mut buf, value);
        }
        let mut cursor = std::io::Cursor::new(&buf);
        for value in values {
            assert_eq!(read_varint_from(&mut cursor).unwrap(), Some(value));
        }
        // Clean EOF at a frame boundary is "no more frames", not an error.
        assert_eq!(read_varint_from(&mut cursor).unwrap(), None);
    }

    #[test]
    fn streaming_varint_rejects_mid_value_eof() {
        let mut cursor = std::io::Cursor::new([0x80u8, 0x80]);
        let err = read_varint_from(&mut cursor).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
    }
}
