//! Integration tests for the query service: served responses must be
//! byte-identical to the one-shot engine path at the same thread count, under
//! concurrent clients, and the plan cache must be observable (and correct)
//! through `/stats`.

use std::net::{SocketAddr, TcpStream};
use subgraph_core::sink::SerializeSink;
use subgraph_core::{CsvSink, EnumerationRequest, NdjsonSink};
use subgraph_graph::{generators, DataGraph};
use subgraph_mapreduce::EngineConfig;
use subgraph_serve::{client, spawn, GraphStore, QueryEngine, ServerConfig};

fn fixture_graph() -> DataGraph {
    generators::gnm(60, 240, 7)
}

fn start(cache_capacity: usize, max_threads: usize, pool: usize) -> subgraph_serve::ServerHandle {
    let engine = QueryEngine::new(
        GraphStore::from_graph(fixture_graph()),
        cache_capacity,
        max_threads,
    );
    let config = ServerConfig {
        listen: Some("127.0.0.1:0".to_string()),
        pool,
        cache_capacity,
        threads_per_query: max_threads,
        ..ServerConfig::default()
    };
    spawn(engine, &config).expect("server starts")
}

/// What `subgraph enumerate --threads <t>` streams for `pattern`: the same
/// engine, planner and sink stack the server runs, invoked one-shot.
fn one_shot_ndjson(pattern: &str, threads: usize) -> Vec<u8> {
    let graph = fixture_graph();
    let plan = EnumerationRequest::resolve(pattern, &graph)
        .unwrap()
        .engine(EngineConfig::with_threads(threads))
        .plan()
        .unwrap();
    let mut out = Vec::new();
    let mut sink = NdjsonSink::new(&mut out);
    plan.run_with_sink(&mut sink);
    sink.finish().unwrap();
    out
}

/// Pulls an integer counter out of the `/stats` JSON without a JSON parser.
fn stat(body: &str, key: &str) -> u64 {
    let needle = format!("\"{key}\":");
    let at = body
        .find(&needle)
        .unwrap_or_else(|| panic!("{key} in {body}"));
    body[at + needle.len()..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap()
}

#[test]
fn concurrent_clients_get_byte_identical_streams() {
    // Deterministic engine output is a function of input and thread count,
    // so pin the per-query thread count on both sides.
    let threads = 2;
    let expected = one_shot_ndjson("triangle", threads);
    assert!(!expected.is_empty(), "fixture graph must contain triangles");

    let server = start(8, threads, 4);
    let addr = server.tcp_addr().unwrap();
    let clients: Vec<_> = (0..8)
        .map(|_| {
            std::thread::spawn(move || {
                client::get(&addr, "/query?pattern=triangle&mode=enumerate")
                    .expect("query succeeds")
            })
        })
        .collect();
    for handle in clients {
        let resp = handle.join().unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, expected, "served stream differs from one-shot");
    }
    server.shutdown();
}

#[test]
fn inline_specs_and_csv_match_one_shot_output() {
    let server = start(8, 1, 2);
    let addr = server.tcp_addr().unwrap();

    // The spec a-b,b-c,c-a is the triangle; both sides resolve it the same.
    let expected = one_shot_ndjson("a-b,b-c,c-a", 1);
    let resp = client::get(&addr, "/query?pattern=a-b%2Cb-c%2Cc-a&mode=enumerate").unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(resp.body, expected);

    // CSV parity through the same plan.
    let graph = fixture_graph();
    let plan = EnumerationRequest::resolve("triangle", &graph)
        .unwrap()
        .engine(EngineConfig::with_threads(1))
        .plan()
        .unwrap();
    let mut expected_csv = Vec::new();
    let mut sink = CsvSink::new(&mut expected_csv);
    plan.run_with_sink(&mut sink);
    sink.finish().unwrap();
    let resp = client::get(&addr, "/query?pattern=triangle&mode=enumerate&format=csv").unwrap();
    assert_eq!(resp.header("content-type").as_deref(), Some("text/csv"));
    assert_eq!(resp.body, expected_csv);
    server.shutdown();
}

#[test]
fn warm_queries_resume_without_replanning() {
    let server = start(8, 1, 2);
    let addr = server.tcp_addr().unwrap();
    let mut counts = Vec::new();
    for _ in 0..10 {
        let resp = client::get(&addr, "/query?pattern=triangle").unwrap();
        assert_eq!(resp.status, 200);
        counts.push(stat(&resp.text(), "count"));
    }
    assert!(counts.windows(2).all(|w| w[0] == w[1]));

    let stats = client::get(&addr, "/stats").unwrap().text();
    assert_eq!(
        stat(&stats, "misses"),
        1,
        "only the cold query plans: {stats}"
    );
    assert_eq!(stat(&stats, "hits"), 9, "every warm query resumes: {stats}");
    assert_eq!(stat(&stats, "queries_ok"), 10);
    server.shutdown();
}

#[test]
fn cache_eviction_is_visible_in_stats() {
    let server = start(2, 1, 1); // room for two plans
    let addr = server.tcp_addr().unwrap();
    for pattern in ["triangle", "square", "path4"] {
        assert_eq!(
            client::get(&addr, &format!("/query?pattern={pattern}"))
                .unwrap()
                .status,
            200
        );
    }
    let stats = client::get(&addr, "/stats").unwrap().text();
    assert_eq!(stat(&stats, "evictions"), 1, "{stats}");
    assert_eq!(stat(&stats, "size"), 2, "{stats}");
    // The evicted plan (triangle, least recently used) re-plans on return.
    client::get(&addr, "/query?pattern=triangle").unwrap();
    let stats = client::get(&addr, "/stats").unwrap().text();
    assert_eq!(stat(&stats, "misses"), 4, "{stats}");
    assert_eq!(stat(&stats, "evictions"), 2, "{stats}");
    server.shutdown();
}

#[test]
fn bad_requests_are_answered_400_in_band() {
    let server = start(8, 1, 2);
    let addr = server.tcp_addr().unwrap();
    for target in [
        "/query",                                     // missing pattern
        "/query?pattern=dodecahedron",                // unknown pattern
        "/query?pattern=a-a",                         // self-loop spec
        "/query?pattern=triangle&mode=xml",           // unknown mode
        "/query?pattern=triangle&format=xml",         // unknown format
        "/query?pattern=triangle&threads=0",          // zero threads
        "/query?pattern=triangle&reducers=abc",       // non-numeric budget
        "/query?pattern=triangle&nope=1",             // unknown key
        "/query?pattern=dodecahedron&mode=enumerate", // 400 before streaming
    ] {
        let resp = client::get(&addr, target).unwrap();
        assert_eq!(resp.status, 400, "{target} => {}", resp.text());
        assert!(!resp.body.is_empty(), "{target} carries a reason");
    }

    // Raw protocol garbage never crashes a worker; it gets a 400 too.
    for garbage in ["BLARG\r\n\r\n", "GET\r\n\r\n", "GET / FTP/1.0\r\n\r\n"] {
        use std::io::{Read, Write};
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(garbage.as_bytes()).unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(
            response.starts_with("HTTP/1.1 400"),
            "{garbage:?} => {response:?}"
        );
    }

    // The server still answers real queries afterwards.
    assert_eq!(
        client::get(&addr, "/query?pattern=triangle")
            .unwrap()
            .status,
        200
    );
    let stats = client::get(&addr, "/stats").unwrap().text();
    assert!(stat(&stats, "client_errors") >= 9, "{stats}");
    server.shutdown();
}

#[test]
fn shutdown_frees_the_port() {
    let server = start(4, 1, 1);
    let addr: SocketAddr = server.tcp_addr().unwrap();
    assert_eq!(client::get(&addr, "/healthz").unwrap().status, 200);
    server.shutdown();
    // The listener is gone: connecting now fails (or connects to nothing
    // that answers). Binding the same port again must succeed.
    let rebound = std::net::TcpListener::bind(addr);
    assert!(rebound.is_ok(), "port still held after shutdown");
}
