//! [`GraphStore`]: the shared immutable graph a server answers queries over.
//!
//! The paper's map-reduce formulation amortizes work across many queries; the
//! store is the serving-side half of that amortization. Everything a query
//! needs from the data graph is computed exactly once, at startup — the graph
//! itself, its summary statistics (and their fingerprint, which keys the plan
//! cache), and the degree/degeneracy node orders of Section 7 — then shared
//! immutably behind an [`Arc`] by every query thread. No query ever re-reads
//! or re-indexes the graph.

use std::sync::Arc;
use std::time::Duration;
use subgraph_graph::stats::stats;
use subgraph_graph::{
    DataGraph, DegeneracyOrder, DegreeOrder, GraphSource, GraphStats, ReadStats, SourceError,
};

/// The immutable, shareable state derived from one data graph at startup.
#[derive(Debug)]
pub struct GraphStore {
    graph: Arc<DataGraph>,
    stats: GraphStats,
    fingerprint: u64,
    degree_order: DegreeOrder,
    degeneracy_order: DegeneracyOrder,
    read_stats: Option<ReadStats>,
    source: String,
    load_time: Duration,
}

impl GraphStore {
    /// Loads `source` and precomputes every derived structure. This is the
    /// only place in the serve stack that touches the graph's bytes; all
    /// query execution works from the returned store.
    pub fn open(source: &GraphSource) -> Result<Self, SourceError> {
        let started = std::time::Instant::now();
        let (graph, read_stats) = source.load_with_stats()?;
        Ok(Self::from_parts(
            graph,
            read_stats,
            source.to_string(),
            started.elapsed(),
        ))
    }

    /// Builds a store around an already-loaded graph (tests, benches).
    pub fn from_graph(graph: DataGraph) -> Self {
        Self::from_parts(graph, None, "<in-memory>".to_string(), Duration::ZERO)
    }

    fn from_parts(
        graph: DataGraph,
        read_stats: Option<ReadStats>,
        source: String,
        load_time: Duration,
    ) -> Self {
        let stats = stats(&graph);
        let fingerprint = stats.fingerprint();
        let degree_order = DegreeOrder::new(&graph);
        let degeneracy_order = DegeneracyOrder::new(&graph);
        GraphStore {
            graph: Arc::new(graph),
            stats,
            fingerprint,
            degree_order,
            degeneracy_order,
            read_stats,
            source,
            load_time,
        }
    }

    /// The shared data graph.
    pub fn graph(&self) -> &Arc<DataGraph> {
        &self.graph
    }

    /// Summary statistics, computed once at startup.
    pub fn stats(&self) -> &GraphStats {
        &self.stats
    }

    /// The statistics fingerprint used in plan-cache keys.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The precomputed non-decreasing-degree order (Section 7).
    pub fn degree_order(&self) -> &DegreeOrder {
        &self.degree_order
    }

    /// The precomputed degeneracy (core-peeling) order.
    pub fn degeneracy_order(&self) -> &DegeneracyOrder {
        &self.degeneracy_order
    }

    /// The degeneracy of the stored graph.
    pub fn degeneracy(&self) -> usize {
        self.degeneracy_order.degeneracy()
    }

    /// Input hygiene counters, when the graph came from an edge-list file.
    pub fn read_stats(&self) -> Option<&ReadStats> {
        self.read_stats.as_ref()
    }

    /// Human-readable description of where the graph came from.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// Wall-clock time spent loading and indexing at startup.
    pub fn load_time(&self) -> Duration {
        self.load_time
    }

    /// The startup banner: one line per fact an operator wants in the log.
    pub fn describe(&self) -> String {
        let mut out = format!(
            "graph {}: n = {}, m = {}, max degree {}, degeneracy {} (loaded in {:.1?})",
            self.source,
            self.stats.num_nodes,
            self.stats.num_edges,
            self.stats.max_degree,
            self.degeneracy(),
            self.load_time,
        );
        if let Some(rs) = &self.read_stats {
            out.push_str(&format!("\ninput hygiene: {rs}"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subgraph_graph::generators;
    use subgraph_graph::NodeOrder;

    #[test]
    fn store_precomputes_stats_and_orders() {
        let store = GraphStore::from_graph(generators::complete(5));
        assert_eq!(store.stats().num_nodes, 5);
        assert_eq!(store.stats().num_edges, 10);
        assert_eq!(store.degeneracy(), 4);
        assert_eq!(store.fingerprint(), store.stats().fingerprint());
        // Orders answer without touching the graph again.
        assert!(store.degree_order().precedes(0, 1));
        assert!(store.degeneracy_order().precedes(4, 0) || store.degeneracy_order().precedes(0, 4));
    }

    #[test]
    fn store_opens_generator_sources() {
        let source: GraphSource = "gnm:50,120,9".parse().unwrap();
        let store = GraphStore::open(&source).unwrap();
        assert_eq!(store.stats().num_edges, 120);
        assert!(store.read_stats().is_none());
        assert_eq!(store.source(), "gnm:50,120,9");
        assert!(store.describe().contains("m = 120"));
    }

    #[test]
    fn store_reports_file_read_stats() {
        let dir = std::env::temp_dir().join("subgraph-serve-store-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dirty.txt");
        std::fs::write(&path, "0 1\r\n1 0\n\n1 2\n").unwrap();
        let store = GraphStore::open(&GraphSource::file(&path)).unwrap();
        let rs = store.read_stats().expect("file sources carry read stats");
        assert_eq!(rs.duplicate_edges, 1);
        assert_eq!(rs.blank_lines, 1);
        assert_eq!(rs.crlf_lines, 1);
        assert!(store.describe().contains("input hygiene"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn store_opens_binary_sgr_graphs() {
        // `serve --graph foo.sgr`: the source sniffs the container magic and
        // the store serves straight from the (mmap-backed) graph.
        let dir = std::env::temp_dir().join("subgraph-serve-store-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.sgr");
        let graph = generators::gnm(60, 150, 4);
        subgraph_graph::write_sgr_file(&graph, &path).unwrap();

        let store = GraphStore::open(&GraphSource::file(&path)).unwrap();
        assert_eq!(store.stats().num_nodes, graph.num_nodes());
        assert_eq!(store.stats().num_edges, graph.num_edges());
        assert!(store.read_stats().is_none(), "binary loads skip hygiene");
        #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
        assert!(store.graph().is_mapped(), "sgr loads borrow the mapping");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn store_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphStore>();
    }
}
