//! The LRU plan cache: planning work paid once per distinct query shape.
//!
//! Planning scores all eleven strategies — including the share optimizer —
//! which for larger patterns costs far more than executing a cheap query.
//! The cache keys the *decision* (the chosen [`CostEstimate`] plus the
//! ranked candidate list) by everything the decision depends on:
//!
//! * the **pattern**, canonicalized to its node count and edge list so
//!   `triangle`, `c3` and the inline spec `a-b,b-c,c-a` share one entry;
//! * the **graph statistics fingerprint** ([`subgraph_graph::GraphStats::fingerprint`]) —
//!   the cost model consumes only those statistics, so equal fingerprints
//!   mean equal estimates;
//! * the **reducer budget**, which selects between the serial and
//!   map-reduce strategy families and sizes every bucket count.
//!
//! A hit hands the cached estimates to [`subgraph_core::plan::Planner::resume`],
//! which rebuilds an executable plan with zero re-estimation. Eviction is
//! least-recently-used over a fixed capacity; hits, misses and evictions are
//! counted with relaxed atomics so `/stats` can report them without taking
//! the cache lock.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use subgraph_core::plan::CostEstimate;
use subgraph_pattern::SampleGraph;

/// What the cache stores per key: the planner's decision, free of any graph
/// borrow so it outlives every request.
#[derive(Clone, Debug)]
pub struct CachedPlan {
    /// The winning estimate ([`subgraph_core::plan::ExecutionPlan::chosen`]).
    pub chosen: CostEstimate,
    /// The ranked candidate table, kept so a resumed plan still explains.
    pub candidates: Vec<CostEstimate>,
}

/// A plan-cache key. Construct with [`PlanKey::new`].
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// Canonical pattern shape: `p` and the sorted edge list.
    pattern: String,
    /// Graph statistics fingerprint.
    fingerprint: u64,
    /// Reducer budget `k`.
    reducers: usize,
}

impl PlanKey {
    /// Builds the key for planning `sample` with budget `reducers` over a
    /// graph whose statistics hash to `fingerprint`.
    pub fn new(sample: &SampleGraph, fingerprint: u64, reducers: usize) -> Self {
        PlanKey {
            pattern: format!("{}|{:?}", sample.num_nodes(), sample.edges()),
            fingerprint,
            reducers,
        }
    }
}

struct Entry {
    plan: CachedPlan,
    last_used: u64,
}

/// A thread-safe LRU cache of planning decisions with hit/miss/eviction
/// counters.
pub struct PlanCache {
    entries: Mutex<(HashMap<PlanKey, Entry>, u64)>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl std::fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanCache")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .field("evictions", &self.evictions())
            .finish()
    }
}

impl PlanCache {
    /// A cache holding at most `capacity` plans. A capacity of 0 disables
    /// caching (every lookup misses, inserts are dropped).
    pub fn new(capacity: usize) -> Self {
        PlanCache {
            entries: Mutex::new((HashMap::new(), 0)),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Looks up a cached decision, refreshing its recency on a hit.
    pub fn lookup(&self, key: &PlanKey) -> Option<CachedPlan> {
        let mut guard = self.entries.lock().expect("plan cache poisoned");
        let (map, clock) = &mut *guard;
        *clock += 1;
        let stamp = *clock;
        match map.get_mut(key) {
            Some(entry) => {
                entry.last_used = stamp;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(entry.plan.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts a decision, evicting the least-recently-used entry when full.
    /// Re-inserting an existing key refreshes both the plan and its recency.
    pub fn insert(&self, key: PlanKey, plan: CachedPlan) {
        if self.capacity == 0 {
            return;
        }
        let mut guard = self.entries.lock().expect("plan cache poisoned");
        let (map, clock) = &mut *guard;
        *clock += 1;
        let stamp = *clock;
        if map.len() >= self.capacity && !map.contains_key(&key) {
            // O(capacity) min-scan: capacities are small (default 64) and
            // eviction only happens on insert after a planning miss, which
            // dwarfs the scan.
            if let Some(lru) = map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                map.remove(&lru);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        map.insert(
            key,
            Entry {
                plan,
                last_used: stamp,
            },
        );
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("plan cache poisoned").0.len()
    }

    /// True when no plans are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum number of cached plans.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Lookups that found a plan.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that found nothing.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries evicted to make room.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subgraph_core::plan::EnumerationRequest;
    use subgraph_graph::generators;
    use subgraph_pattern::{catalog, parse_spec};

    fn plan_for(pattern: &str, reducers: usize) -> CachedPlan {
        let g = generators::gnm(30, 100, 1);
        let plan = EnumerationRequest::resolve(pattern, &g)
            .unwrap()
            .reducers(reducers)
            .plan()
            .unwrap();
        CachedPlan {
            chosen: plan.chosen().clone(),
            candidates: plan.candidates().to_vec(),
        }
    }

    #[test]
    fn equivalent_patterns_share_a_key() {
        let triangle = catalog::triangle();
        let spec = parse_spec("a-b,b-c,c-a").unwrap();
        assert_eq!(PlanKey::new(&triangle, 7, 64), PlanKey::new(&spec, 7, 64));
        // Every key component matters.
        assert_ne!(
            PlanKey::new(&triangle, 7, 64),
            PlanKey::new(&triangle, 8, 64)
        );
        assert_ne!(
            PlanKey::new(&triangle, 7, 64),
            PlanKey::new(&triangle, 7, 1)
        );
        assert_ne!(
            PlanKey::new(&triangle, 7, 64),
            PlanKey::new(&catalog::square(), 7, 64)
        );
    }

    #[test]
    fn hits_misses_and_recency() {
        let cache = PlanCache::new(4);
        let key = PlanKey::new(&catalog::triangle(), 1, 64);
        assert!(cache.lookup(&key).is_none());
        assert_eq!(cache.misses(), 1);
        cache.insert(key.clone(), plan_for("triangle", 64));
        let hit = cache.lookup(&key).expect("inserted plan is found");
        assert_eq!(
            hit.chosen.strategy,
            plan_for("triangle", 64).chosen.strategy
        );
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn lru_eviction_prefers_stale_entries() {
        let cache = PlanCache::new(2);
        let k_triangle = PlanKey::new(&catalog::triangle(), 1, 64);
        let k_square = PlanKey::new(&catalog::square(), 1, 64);
        let k_path = PlanKey::new(&catalog::by_name("path4").unwrap(), 1, 64);
        cache.insert(k_triangle.clone(), plan_for("triangle", 64));
        cache.insert(k_square.clone(), plan_for("square", 64));
        // Touch the triangle so the square becomes least-recently-used.
        assert!(cache.lookup(&k_triangle).is_some());
        cache.insert(k_path.clone(), plan_for("path4", 64));
        assert_eq!(cache.evictions(), 1);
        assert_eq!(cache.len(), 2);
        assert!(cache.lookup(&k_square).is_none(), "square was evicted");
        assert!(cache.lookup(&k_triangle).is_some());
        assert!(cache.lookup(&k_path).is_some());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = PlanCache::new(0);
        let key = PlanKey::new(&catalog::triangle(), 1, 64);
        cache.insert(key.clone(), plan_for("triangle", 64));
        assert!(cache.lookup(&key).is_none());
        assert!(cache.is_empty());
    }

    #[test]
    fn cache_is_shareable_across_threads() {
        use std::sync::Arc;
        let cache = Arc::new(PlanCache::new(16));
        let key = PlanKey::new(&catalog::triangle(), 1, 64);
        cache.insert(key.clone(), plan_for("triangle", 64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let key = key.clone();
                std::thread::spawn(move || cache.lookup(&key).is_some())
            })
            .collect();
        for h in handles {
            assert!(h.join().unwrap());
        }
        assert_eq!(cache.hits(), 4);
    }
}
