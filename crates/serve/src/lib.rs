//! `subgraph serve`: a long-lived query service over one shared data graph.
//!
//! The paper's framing is batch: one map-reduce job per query, and every job
//! pays to re-read the graph, re-derive its statistics, and re-run the
//! planner's cost model. This crate amortizes all three across queries:
//!
//! * [`store::GraphStore`] loads the graph **once** at startup and
//!   precomputes its statistics, their fingerprint, and the degree and
//!   degeneracy node orders; every query thread shares the result immutably.
//! * [`cache::PlanCache`] memoizes the planner's decision — the chosen
//!   [`subgraph_core::plan::CostEstimate`] and the ranked candidate list —
//!   keyed by `(pattern shape, graph fingerprint, reducer budget)`. A warm
//!   query resumes its plan with zero re-estimation.
//! * [`server`] runs the whole thing behind a dependency-free HTTP/1.1
//!   subset ([`http`]) on TCP (and, on unix, a unix-domain socket), with a
//!   bounded worker pool, request/latency/cache metrics at `/stats`, and
//!   graceful drain on SIGINT/SIGTERM.
//!
//! Queries (`/query?pattern=triangle&mode=count`) run through the same
//! engine stack as the one-shot CLI — [`query::QueryEngine`] streams
//! enumerate results through [`subgraph_core::sink::NdjsonSink`] /
//! [`subgraph_core::sink::CsvSink`] and counts through the zero-allocation
//! [`subgraph_core::sink::CountSink`] — so served responses are
//! byte-identical to `subgraph enumerate` at the same thread count.
//!
//! The crate is intentionally dependency-free: listeners come from
//! `std::net` / `std::os::unix::net`, concurrency from `std::sync`, and the
//! HTTP subset is ~200 lines under our own tests.

pub mod cache;
pub mod client;
pub mod http;
pub mod query;
pub mod server;
pub mod store;

pub use cache::{CachedPlan, PlanCache, PlanKey};
pub use query::{OutputFormat, QueryEngine, QueryError, QueryMode, QueryOutcome, QueryRequest};
pub use server::{install_signal_handlers, spawn, Metrics, ServerConfig, ServerHandle};
pub use store::GraphStore;
