//! The long-lived server: listeners, a bounded worker pool, request
//! routing, metrics, and graceful shutdown.
//!
//! The shape is deliberately boring: acceptor threads (one per listener)
//! push connections into a bounded channel; a fixed pool of worker threads
//! drains it, each handling one connection at a time (parse → route →
//! respond → close). Backpressure is the channel bound — when every worker
//! is busy and the queue is full, accepts wait, and the kernel's listen
//! backlog absorbs the burst. Shutdown is a shared flag: acceptors poll it
//! between non-blocking accepts, workers between channel timeouts, so a
//! signal (or [`ServerHandle::shutdown`]) drains in-flight queries and joins
//! every thread without dropping a response mid-body.

use crate::http::{read_request, write_response, write_streaming_header, HttpError, HttpRequest};
use crate::query::{QueryEngine, QueryError, QueryMode, QueryRequest};
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How the server is run: listeners, pool size, cache capacity.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// TCP listen address, e.g. `127.0.0.1:7878`. Port 0 picks a free port
    /// (the handle reports the bound address).
    pub listen: Option<String>,
    /// Unix-domain socket path (unix only). Removed and re-created at bind.
    #[cfg(unix)]
    pub unix_path: Option<std::path::PathBuf>,
    /// Worker threads handling connections.
    pub pool: usize,
    /// Plan-cache capacity (entries).
    pub cache_capacity: usize,
    /// Per-query engine thread budget.
    pub threads_per_query: usize,
    /// Per-query resident-memory budget in bytes for the shuffle; past it
    /// arena runs spill to disk. 0 (the default) is unbounded.
    pub memory_budget: usize,
    /// Base directory for spill run files (`None` uses the OS temp dir).
    pub spill_dir: Option<std::path::PathBuf>,
    /// Per-connection socket read timeout. A client that connects and never
    /// finishes its request releases its worker after this long instead of
    /// holding it hostage forever (the classic slowloris failure). `None`
    /// disables the timeout.
    pub read_timeout: Option<Duration>,
    /// Per-connection socket write timeout: a client that stops draining a
    /// streamed response is dropped instead of wedging the worker.
    pub write_timeout: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            listen: Some("127.0.0.1:7878".to_string()),
            #[cfg(unix)]
            unix_path: None,
            pool: 4,
            cache_capacity: 64,
            threads_per_query: 1,
            memory_budget: 0,
            spill_dir: None,
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(30)),
        }
    }
}

/// Request/latency counters, shared between workers and `/stats`.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Connections that delivered a parseable request.
    pub requests: AtomicU64,
    /// Queries answered 200.
    pub queries_ok: AtomicU64,
    /// Requests answered 400/404/405.
    pub client_errors: AtomicU64,
    /// Connections dropped by I/O failures (client went away mid-response).
    pub io_errors: AtomicU64,
    /// Sum of successful query execution times, microseconds.
    pub query_micros_total: AtomicU64,
    /// Slowest successful query, microseconds.
    pub query_micros_max: AtomicU64,
}

impl Metrics {
    fn record_query(&self, elapsed: Duration) {
        let micros = elapsed.as_micros().min(u64::MAX as u128) as u64;
        self.queries_ok.fetch_add(1, Ordering::Relaxed);
        self.query_micros_total.fetch_add(micros, Ordering::Relaxed);
        self.query_micros_max.fetch_max(micros, Ordering::Relaxed);
    }
}

/// One accepted connection, from either listener family.
enum Conn {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(std::os::unix::net::UnixStream),
}

/// A running server. Dropping the handle shuts the server down.
pub struct ServerHandle {
    engine: Arc<QueryEngine>,
    metrics: Arc<Metrics>,
    shutdown: Arc<AtomicBool>,
    tcp_addr: Option<SocketAddr>,
    threads: Vec<JoinHandle<()>>,
    #[cfg(unix)]
    unix_path: Option<std::path::PathBuf>,
}

impl ServerHandle {
    /// The bound TCP address, when a TCP listener was configured (resolves
    /// port 0 to the actual port).
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// The query engine (store + plan cache) behind the server.
    pub fn engine(&self) -> &Arc<QueryEngine> {
        &self.engine
    }

    /// The request metrics.
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    /// Requests the server stop and joins every thread. In-flight queries
    /// finish; queued-but-unhandled connections are dropped.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        #[cfg(unix)]
        if let Some(path) = self.unix_path.take() {
            let _ = std::fs::remove_file(path);
        }
    }

    /// Blocks until `stop` becomes true (e.g. the signal flag from
    /// [`install_signal_handlers`]), then shuts down gracefully.
    pub fn run_until(mut self, stop: &AtomicBool) {
        while !stop.load(Ordering::SeqCst) && !self.shutdown.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(50));
        }
        self.shutdown_in_place();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

/// Starts a server over `engine` per `config`. Returns once every listener
/// is bound and every worker is running, so a follow-up connect succeeds.
pub fn spawn(engine: QueryEngine, config: &ServerConfig) -> io::Result<ServerHandle> {
    let engine = Arc::new(engine);
    let metrics = Arc::new(Metrics::default());
    let shutdown = Arc::new(AtomicBool::new(false));
    let mut threads = Vec::new();

    // Bounded hand-off: twice the pool so a short burst queues while every
    // worker is busy, without unbounded connection buildup.
    let (tx, rx) = sync_channel::<Conn>(config.pool.max(1) * 2);
    let rx = Arc::new(Mutex::new(rx));

    let mut tcp_addr = None;
    if let Some(listen) = &config.listen {
        let listener = TcpListener::bind(listen)?;
        tcp_addr = Some(listener.local_addr()?);
        listener.set_nonblocking(true)?;
        threads.push(spawn_tcp_acceptor(
            listener,
            tx.clone(),
            Arc::clone(&shutdown),
        ));
    }

    #[cfg(unix)]
    let mut bound_unix_path = None;
    #[cfg(unix)]
    if let Some(path) = &config.unix_path {
        // A stale socket file from a previous run would fail the bind.
        let _ = std::fs::remove_file(path);
        let listener = std::os::unix::net::UnixListener::bind(path)?;
        listener.set_nonblocking(true)?;
        bound_unix_path = Some(path.clone());
        threads.push(spawn_unix_acceptor(
            listener,
            tx.clone(),
            Arc::clone(&shutdown),
        ));
    }
    drop(tx);

    for worker in 0..config.pool.max(1) {
        let rx = Arc::clone(&rx);
        let engine = Arc::clone(&engine);
        let metrics = Arc::clone(&metrics);
        let shutdown = Arc::clone(&shutdown);
        let timeouts = (config.read_timeout, config.write_timeout);
        threads.push(
            std::thread::Builder::new()
                .name(format!("serve-worker-{worker}"))
                .spawn(move || worker_loop(rx, engine, metrics, shutdown, timeouts))
                .expect("spawning a worker thread"),
        );
    }

    Ok(ServerHandle {
        engine,
        metrics,
        shutdown,
        tcp_addr,
        threads,
        #[cfg(unix)]
        unix_path: bound_unix_path,
    })
}

fn spawn_tcp_acceptor(
    listener: TcpListener,
    tx: SyncSender<Conn>,
    shutdown: Arc<AtomicBool>,
) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name("serve-accept-tcp".to_string())
        .spawn(move || loop {
            if shutdown.load(Ordering::SeqCst) {
                return;
            }
            match listener.accept() {
                Ok((stream, _)) => {
                    if tx.send(Conn::Tcp(stream)).is_err() {
                        return; // workers are gone
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    // Short poll: this bounds the accept latency a fresh
                    // connection pays while the shutdown flag stays checkable.
                    std::thread::sleep(Duration::from_micros(200));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(10)),
            }
        })
        .expect("spawning the tcp acceptor")
}

#[cfg(unix)]
fn spawn_unix_acceptor(
    listener: std::os::unix::net::UnixListener,
    tx: SyncSender<Conn>,
    shutdown: Arc<AtomicBool>,
) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name("serve-accept-unix".to_string())
        .spawn(move || loop {
            if shutdown.load(Ordering::SeqCst) {
                return;
            }
            match listener.accept() {
                Ok((stream, _)) => {
                    if tx.send(Conn::Unix(stream)).is_err() {
                        return;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    // Short poll: this bounds the accept latency a fresh
                    // connection pays while the shutdown flag stays checkable.
                    std::thread::sleep(Duration::from_micros(200));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(10)),
            }
        })
        .expect("spawning the unix acceptor")
}

fn worker_loop(
    rx: Arc<Mutex<Receiver<Conn>>>,
    engine: Arc<QueryEngine>,
    metrics: Arc<Metrics>,
    shutdown: Arc<AtomicBool>,
    (read_timeout, write_timeout): (Option<Duration>, Option<Duration>),
) {
    loop {
        // Hold the receiver lock only while waiting, never while handling.
        let conn = {
            let rx = rx.lock().expect("connection queue poisoned");
            rx.recv_timeout(Duration::from_millis(50))
        };
        match conn {
            Ok(Conn::Tcp(stream)) => {
                let _ = stream.set_nodelay(true);
                // A worker handles one connection at a time, so a socket that
                // never produces (or never drains) bytes would wedge it; the
                // timeouts turn that into an io error that closes the
                // connection and frees the worker.
                let _ = stream.set_read_timeout(read_timeout);
                let _ = stream.set_write_timeout(write_timeout);
                handle_connection(stream, &engine, &metrics);
            }
            #[cfg(unix)]
            Ok(Conn::Unix(stream)) => {
                let _ = stream.set_read_timeout(read_timeout);
                let _ = stream.set_write_timeout(write_timeout);
                handle_connection(stream, &engine, &metrics);
            }
            Err(RecvTimeoutError::Timeout) => {
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// Parses, routes and answers one connection, then closes it.
fn handle_connection<S: Read + Write + Send>(stream: S, engine: &QueryEngine, metrics: &Metrics) {
    let mut reader = BufReader::new(stream);
    let request = match read_request(&mut reader) {
        Ok(request) => request,
        Err(HttpError::Malformed(reason)) => {
            metrics.client_errors.fetch_add(1, Ordering::Relaxed);
            let mut writer = BufWriter::new(reader.into_inner());
            let _ = write_response(&mut writer, 400, "text/plain", reason.as_bytes());
            return;
        }
        Err(HttpError::Io(_)) => {
            metrics.io_errors.fetch_add(1, Ordering::Relaxed);
            return;
        }
    };
    metrics.requests.fetch_add(1, Ordering::Relaxed);
    let mut writer = BufWriter::new(reader.into_inner());
    if let Err(e) = route(&request, engine, metrics, &mut writer) {
        let _ = e; // the client is gone; nothing useful to do
        metrics.io_errors.fetch_add(1, Ordering::Relaxed);
    }
}

/// Routes one parsed request. `Err` means the response could not be
/// delivered (I/O), not a client error — those are answered in-band.
fn route<W: Write + Send>(
    request: &HttpRequest,
    engine: &QueryEngine,
    metrics: &Metrics,
    writer: &mut W,
) -> io::Result<()> {
    if request.method != "GET" {
        metrics.client_errors.fetch_add(1, Ordering::Relaxed);
        return write_response(
            writer,
            405,
            "text/plain",
            b"only GET is supported; queries travel in the query string",
        );
    }
    match request.path.as_str() {
        "/query" => {
            let params = request.params.iter().map(|(k, v)| (k.as_str(), v.as_str()));
            let query = match QueryRequest::from_params(params) {
                Ok(query) => query,
                Err(QueryError::BadRequest(reason)) => {
                    metrics.client_errors.fetch_add(1, Ordering::Relaxed);
                    return write_response(writer, 400, "text/plain", reason.as_bytes());
                }
                Err(QueryError::Io(e)) => return Err(e),
            };
            serve_query(&query, engine, metrics, writer)
        }
        "/stats" => {
            let body = stats_json(engine, metrics);
            write_response(writer, 200, "application/json", body.as_bytes())
        }
        "/healthz" => write_response(writer, 200, "text/plain", b"ok"),
        _ => {
            metrics.client_errors.fetch_add(1, Ordering::Relaxed);
            write_response(
                writer,
                404,
                "text/plain",
                b"unknown path; try /query, /stats or /healthz",
            )
        }
    }
}

fn serve_query<W: Write + Send>(
    query: &QueryRequest,
    engine: &QueryEngine,
    metrics: &Metrics,
    writer: &mut W,
) -> io::Result<()> {
    match query.mode {
        QueryMode::Count => match engine.execute(query, io::sink()) {
            Ok(outcome) => {
                metrics.record_query(outcome.elapsed);
                let body = format!(
                    "{{\"pattern\":{:?},\"count\":{},\"strategy\":\"{}\",\"cache_hit\":{},\"automorphisms\":{},\"elapsed_micros\":{}}}\n",
                    query.pattern,
                    outcome.count,
                    outcome.strategy,
                    outcome.cache_hit,
                    outcome.automorphisms,
                    outcome.elapsed.as_micros(),
                );
                write_response(writer, 200, "application/json", body.as_bytes())
            }
            Err(QueryError::BadRequest(reason)) => {
                metrics.client_errors.fetch_add(1, Ordering::Relaxed);
                write_response(writer, 400, "text/plain", reason.as_bytes())
            }
            Err(QueryError::Io(e)) => Err(e),
        },
        QueryMode::Enumerate => {
            // Validate before the header goes out: resolve failures must be
            // a clean 400, not a 200 with an error wedged mid-stream.
            match engine.validate(query) {
                Ok(()) => {}
                Err(QueryError::BadRequest(reason)) => {
                    metrics.client_errors.fetch_add(1, Ordering::Relaxed);
                    return write_response(writer, 400, "text/plain", reason.as_bytes());
                }
                Err(QueryError::Io(e)) => return Err(e),
            }
            write_streaming_header(writer, 200, query.format.content_type())?;
            match engine.execute(query, &mut *writer) {
                Ok(outcome) => {
                    metrics.record_query(outcome.elapsed);
                    writer.flush()
                }
                Err(QueryError::Io(e)) => Err(e),
                Err(QueryError::BadRequest(reason)) => {
                    // Unreachable in practice: validation already passed.
                    metrics.client_errors.fetch_add(1, Ordering::Relaxed);
                    let _ = writer.write_all(reason.as_bytes());
                    writer.flush()
                }
            }
        }
    }
}

/// Renders the `/stats` document: request counters, latency, plan-cache
/// counters, and the graph summary.
pub fn stats_json(engine: &QueryEngine, metrics: &Metrics) -> String {
    let cache = engine.cache();
    let store = engine.store();
    let queries = metrics.queries_ok.load(Ordering::Relaxed);
    let total = metrics.query_micros_total.load(Ordering::Relaxed);
    let mean = total.checked_div(queries).unwrap_or(0);
    format!(
        concat!(
            "{{\"requests\":{},\"queries_ok\":{},\"client_errors\":{},\"io_errors\":{},",
            "\"latency_micros\":{{\"mean\":{},\"max\":{}}},",
            "\"plan_cache\":{{\"hits\":{},\"misses\":{},\"evictions\":{},\"size\":{},\"capacity\":{}}},",
            "\"graph\":{{\"source\":{:?},\"nodes\":{},\"edges\":{},\"max_degree\":{},\"degeneracy\":{},\"fingerprint\":\"{:016x}\"}}}}\n",
        ),
        metrics.requests.load(Ordering::Relaxed),
        queries,
        metrics.client_errors.load(Ordering::Relaxed),
        metrics.io_errors.load(Ordering::Relaxed),
        mean,
        metrics.query_micros_max.load(Ordering::Relaxed),
        cache.hits(),
        cache.misses(),
        cache.evictions(),
        cache.len(),
        cache.capacity(),
        store.source(),
        store.stats().num_nodes,
        store.stats().num_edges,
        store.stats().max_degree,
        store.degeneracy(),
        store.fingerprint(),
    )
}

// ---- signal handling --------------------------------------------------------

static SIGNAL_SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// Installs SIGINT/SIGTERM handlers (unix) that flip the returned flag, so
/// `subgraph serve` drains and exits instead of dying mid-response. On
/// non-unix platforms this returns the flag without installing anything.
/// Idempotent.
pub fn install_signal_handlers() -> &'static AtomicBool {
    #[cfg(unix)]
    {
        extern "C" fn on_signal(_sig: i32) {
            SIGNAL_SHUTDOWN.store(true, Ordering::SeqCst);
        }
        // Raw libc signal(2) registration: the std library exposes no signal
        // API and this crate is dependency-free by design. SIGINT = 2,
        // SIGTERM = 15 on every unix this builds for.
        extern "C" {
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        }
        unsafe {
            signal(2, on_signal);
            signal(15, on_signal);
        }
    }
    &SIGNAL_SHUTDOWN
}

/// The startup banner logged by `subgraph serve`.
pub fn startup_banner(
    engine: &QueryEngine,
    config: &ServerConfig,
    addr: Option<SocketAddr>,
) -> String {
    let mut out = String::new();
    out.push_str(&engine.store().describe());
    out.push('\n');
    if let Some(addr) = addr {
        out.push_str(&format!("listening on http://{addr}\n"));
    }
    #[cfg(unix)]
    if let Some(path) = &config.unix_path {
        out.push_str(&format!("listening on unix:{}\n", path.display()));
    }
    out.push_str(&format!(
        "workers {}, plan cache {} entries, {} thread(s) per query, io timeout {}",
        config.pool.max(1),
        config.cache_capacity,
        config.threads_per_query.max(1),
        match config.read_timeout {
            Some(t) => format!("{}s", t.as_secs()),
            None => "off".to_string(),
        },
    ));
    if config.memory_budget > 0 {
        out.push_str(&format!(
            ", shuffle memory budget {} bytes (spill dir: {})",
            config.memory_budget,
            match &config.spill_dir {
                Some(dir) => dir.display().to_string(),
                None => "os temp".to_string(),
            },
        ));
    }
    out
}

/// An [`Instant`] alias kept public for the bench (latency timing around the
/// client calls).
pub type Clock = Instant;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client;
    use crate::store::GraphStore;
    use subgraph_graph::generators;

    fn test_server() -> ServerHandle {
        let engine = QueryEngine::new(GraphStore::from_graph(generators::complete(5)), 8, 1);
        let config = ServerConfig {
            listen: Some("127.0.0.1:0".to_string()),
            pool: 2,
            ..ServerConfig::default()
        };
        spawn(engine, &config).expect("server starts")
    }

    #[test]
    fn serves_count_queries_and_stats() {
        let server = test_server();
        let addr = server.tcp_addr().unwrap();
        let resp = client::get(&addr, "/query?pattern=triangle").unwrap();
        assert_eq!(resp.status, 200);
        let body = String::from_utf8(resp.body).unwrap();
        assert!(body.contains("\"count\":10"), "{body}");
        assert!(body.contains("\"cache_hit\":false"), "{body}");

        let resp = client::get(&addr, "/query?pattern=triangle").unwrap();
        let body = String::from_utf8(resp.body).unwrap();
        assert!(body.contains("\"cache_hit\":true"), "{body}");

        let stats = client::get(&addr, "/stats").unwrap();
        assert_eq!(stats.status, 200);
        let body = String::from_utf8(stats.body).unwrap();
        assert!(body.contains("\"hits\":1"), "{body}");
        assert!(body.contains("\"misses\":1"), "{body}");
        server.shutdown();
    }

    #[test]
    fn serves_enumerate_streams() {
        let server = test_server();
        let addr = server.tcp_addr().unwrap();
        let resp = client::get(&addr, "/query?pattern=triangle&mode=enumerate").unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(
            resp.header("content-type").as_deref(),
            Some("application/x-ndjson")
        );
        let body = String::from_utf8(resp.body).unwrap();
        assert_eq!(body.lines().count(), 10);
        server.shutdown();
    }

    #[test]
    fn answers_errors_in_band() {
        let server = test_server();
        let addr = server.tcp_addr().unwrap();
        assert_eq!(client::get(&addr, "/nope").unwrap().status, 404);
        assert_eq!(
            client::get(&addr, "/query?pattern=dodecahedron")
                .unwrap()
                .status,
            400
        );
        assert_eq!(
            client::get(&addr, "/query?pattern=a-a&mode=enumerate")
                .unwrap()
                .status,
            400
        );
        assert_eq!(client::get(&addr, "/healthz").unwrap().status, 200);
        server.shutdown();
    }

    #[cfg(unix)]
    #[test]
    fn serves_over_a_unix_socket() {
        let path =
            std::env::temp_dir().join(format!("subgraph-serve-test-{}.sock", std::process::id()));
        let engine = QueryEngine::new(GraphStore::from_graph(generators::complete(5)), 8, 1);
        let config = ServerConfig {
            listen: None,
            unix_path: Some(path.clone()),
            pool: 1,
            ..ServerConfig::default()
        };
        let server = spawn(engine, &config).unwrap();
        let resp = client::get_unix(&path, "/query?pattern=triangle").unwrap();
        assert_eq!(resp.status, 200);
        assert!(String::from_utf8(resp.body)
            .unwrap()
            .contains("\"count\":10"));
        server.shutdown();
        assert!(!path.exists(), "socket file cleaned up on shutdown");
    }

    /// The slowloris regression: a client that connects and never sends its
    /// request must not hold a connection worker hostage. With a *single*
    /// worker and a short read timeout, a concurrent well-behaved client
    /// still gets served, and the staller's socket is closed.
    #[test]
    fn a_stalled_client_cannot_starve_other_connections() {
        let engine = QueryEngine::new(GraphStore::from_graph(generators::complete(5)), 8, 1);
        let config = ServerConfig {
            listen: Some("127.0.0.1:0".to_string()),
            pool: 1,
            read_timeout: Some(Duration::from_millis(150)),
            write_timeout: Some(Duration::from_millis(500)),
            ..ServerConfig::default()
        };
        let server = spawn(engine, &config).expect("server starts");
        let addr = server.tcp_addr().unwrap();

        // The staller: connects, sends nothing, keeps the socket open.
        let mut staller = TcpStream::connect(addr).unwrap();
        // Give the lone worker time to pick the staller up, so the healthy
        // request genuinely queues behind it.
        std::thread::sleep(Duration::from_millis(50));

        let healthy = client::get(&addr, "/query?pattern=triangle").unwrap();
        assert_eq!(healthy.status, 200);
        assert!(String::from_utf8(healthy.body)
            .unwrap()
            .contains("\"count\":10"));

        // The server must have dropped the stalled connection: the staller
        // reads EOF (or a connection reset) instead of blocking forever.
        staller
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut buf = [0u8; 64];
        match staller.read(&mut buf) {
            Ok(0) => {} // clean close
            Ok(n) => panic!("unexpected {n} bytes from a stalled connection"),
            Err(e) if e.kind() == io::ErrorKind::ConnectionReset => {}
            Err(e) => panic!("staller read should see a closed socket, got {e}"),
        }
        assert_eq!(server.metrics().io_errors.load(Ordering::Relaxed), 1);
        server.shutdown();
    }

    #[test]
    fn signal_flag_is_returned_and_static() {
        let flag = install_signal_handlers();
        assert!(!flag.load(Ordering::SeqCst) || flag.load(Ordering::SeqCst));
    }
}
