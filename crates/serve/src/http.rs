//! A minimal HTTP/1.1 subset over any byte stream — no external
//! dependencies, because the protocol surface a query service needs is tiny:
//! `GET` with a query string in, status + headers + body out, one request
//! per connection (`Connection: close`), which is also what lets enumerate
//! responses stream without a precomputed `Content-Length`.
//!
//! The parser is deliberately strict and bounded: request lines and headers
//! are capped, unsupported methods are reported as such, and every parse
//! failure carries a reason the server turns into a 400 body. Percent
//! escapes (`%2C`) and `+`-for-space are decoded in query names and values.

use std::io::{self, BufRead, Write};

/// Longest accepted request line, in bytes. Patterns and flags fit in a
/// fraction of this; anything longer is a client bug or abuse.
const MAX_REQUEST_LINE: usize = 8 * 1024;
/// Most headers accepted per request.
const MAX_HEADERS: usize = 64;

/// One parsed request: the method, the decoded path, and the decoded query
/// parameters in order of appearance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HttpRequest {
    /// Request method, uppercased (`GET`, `HEAD`, ...).
    pub method: String,
    /// Decoded path without the query string, e.g. `/query`.
    pub path: String,
    /// Decoded `key=value` pairs from the query string.
    pub params: Vec<(String, String)>,
}

/// Why a request could not be parsed.
#[derive(Debug)]
pub enum HttpError {
    /// The bytes are not an acceptable HTTP request; the reason is shown in
    /// the 400 response body.
    Malformed(String),
    /// The connection failed mid-read.
    Io(io::Error),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Malformed(reason) => write!(f, "malformed request: {reason}"),
            HttpError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for HttpError {}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// Reads one request (request line + headers) from `reader`. Bodies are not
/// supported — the service is query-string only — so a request advertising a
/// non-empty body is rejected rather than half-read.
pub fn read_request<R: BufRead>(reader: &mut R) -> Result<HttpRequest, HttpError> {
    let line = read_capped_line(reader)?;
    let mut parts = line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => return Err(HttpError::Malformed(format!("bad request line {line:?}"))),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed(format!(
            "unsupported protocol {version:?}"
        )));
    }
    let method = method.to_ascii_uppercase();

    // Headers: consumed and bounded; only Content-Length matters (to reject
    // bodies), the rest are tolerated and ignored.
    let mut headers = 0usize;
    loop {
        let header = read_capped_line(reader)?;
        if header.is_empty() {
            break;
        }
        headers += 1;
        if headers > MAX_HEADERS {
            return Err(HttpError::Malformed("too many headers".into()));
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length")
                && value.trim().parse::<u64>().map_or(true, |n| n > 0)
            {
                return Err(HttpError::Malformed(
                    "request bodies are not supported; use the query string".into(),
                ));
            }
        } else {
            return Err(HttpError::Malformed(format!("bad header {header:?}")));
        }
    }

    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    let path = percent_decode(raw_path)
        .ok_or_else(|| HttpError::Malformed(format!("bad escape in path {raw_path:?}")))?;
    let mut params = Vec::new();
    if let Some(query) = raw_query {
        for pair in query.split('&').filter(|p| !p.is_empty()) {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            let k = percent_decode(k)
                .ok_or_else(|| HttpError::Malformed(format!("bad escape in {pair:?}")))?;
            let v = percent_decode(v)
                .ok_or_else(|| HttpError::Malformed(format!("bad escape in {pair:?}")))?;
            params.push((k, v));
        }
    }
    Ok(HttpRequest {
        method,
        path,
        params,
    })
}

/// Reads one CRLF- (or LF-) terminated line, rejecting oversized ones.
fn read_capped_line<R: BufRead>(reader: &mut R) -> Result<String, HttpError> {
    let mut buf = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        {
            let available = reader.fill_buf()?;
            if available.is_empty() {
                if buf.is_empty() {
                    return Err(HttpError::Io(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "connection closed before a full request arrived",
                    )));
                }
                break;
            }
            byte[0] = available[0];
        }
        reader.consume(1);
        if byte[0] == b'\n' {
            break;
        }
        buf.push(byte[0]);
        if buf.len() > MAX_REQUEST_LINE {
            return Err(HttpError::Malformed(
                "request line or header too long".into(),
            ));
        }
    }
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    String::from_utf8(buf).map_err(|_| HttpError::Malformed("non-utf8 request".into()))
}

/// Decodes `%XX` escapes and `+`-for-space. Returns `None` on a truncated or
/// non-hex escape.
pub fn percent_decode(s: &str) -> Option<String> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hi = hex_value(*bytes.get(i + 1)?)?;
                let lo = hex_value(*bytes.get(i + 2)?)?;
                out.push(hi * 16 + lo);
                i += 3;
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).ok()
}

fn hex_value(b: u8) -> Option<u8> {
    match b {
        b'0'..=b'9' => Some(b - b'0'),
        b'a'..=b'f' => Some(b - b'a' + 10),
        b'A'..=b'F' => Some(b - b'A' + 10),
        _ => None,
    }
}

/// Percent-encodes a query value: alphanumerics and `-_.~,:` pass through
/// (commas keep inline pattern specs readable in logs), everything else is
/// escaped.
pub fn percent_encode(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for &b in s.as_bytes() {
        match b {
            b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' | b',' | b':' => {
                out.push(b as char)
            }
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

/// The reason phrase for the status codes the server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

/// Writes a complete response with a known body. Always `Connection: close`:
/// one request per connection keeps the server state machine trivial.
pub fn write_response<W: Write>(
    writer: &mut W,
    status: u16,
    content_type: &str,
    body: &[u8],
) -> io::Result<()> {
    write!(
        writer,
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        reason(status),
        body.len(),
    )?;
    writer.write_all(body)?;
    writer.flush()
}

/// Writes the header block for a streamed response (no `Content-Length`;
/// the body runs until the connection closes). The caller streams the body
/// and then drops the connection.
pub fn write_streaming_header<W: Write>(
    writer: &mut W,
    status: u16,
    content_type: &str,
) -> io::Result<()> {
    write!(
        writer,
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nConnection: close\r\n\r\n",
        reason(status),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<HttpRequest, HttpError> {
        read_request(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_a_plain_get() {
        let req = parse("GET /stats HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/stats");
        assert!(req.params.is_empty());
    }

    #[test]
    fn parses_query_parameters_in_order() {
        let req = parse("GET /query?pattern=triangle&mode=count HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(
            req.params,
            vec![
                ("pattern".to_string(), "triangle".to_string()),
                ("mode".to_string(), "count".to_string())
            ]
        );
    }

    #[test]
    fn decodes_percent_escapes_and_plus() {
        let req = parse("GET /query?pattern=a-b%2Cb-c&x=1+2 HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.params[0].1, "a-b,b-c");
        assert_eq!(req.params[1].1, "1 2");
    }

    #[test]
    fn rejects_garbage_and_truncation() {
        assert!(matches!(
            parse("not http\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET /x SPDY/3\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET /query?p=%zz HTTP/1.1\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(parse(""), Err(HttpError::Io(_))));
        assert!(matches!(
            parse("GET /x HTTP/1.1\r\nbroken header\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
    }

    #[test]
    fn rejects_bodies_and_oversized_lines() {
        assert!(matches!(
            parse("POST /query HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello"),
            Err(HttpError::Malformed(_))
        ));
        // Content-Length: 0 is fine (curl sends it on --data-free POSTs).
        assert!(parse("GET /x HTTP/1.1\r\nContent-Length: 0\r\n\r\n").is_ok());
        let long = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_REQUEST_LINE + 2));
        assert!(matches!(parse(&long), Err(HttpError::Malformed(_))));
    }

    #[test]
    fn lf_only_line_endings_are_accepted() {
        let req = parse("GET /stats HTTP/1.1\nHost: x\n\n").unwrap();
        assert_eq!(req.path, "/stats");
    }

    #[test]
    fn encode_decode_round_trips() {
        for s in ["a-b,b-c,c-a", "with space", "100%", "a&b=c", "päth"] {
            assert_eq!(percent_decode(&percent_encode(s)).unwrap(), s);
        }
        assert_eq!(percent_encode("a-b,b-c"), "a-b,b-c");
    }

    #[test]
    fn responses_have_the_expected_shape() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "application/json", b"{}").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));

        let mut out = Vec::new();
        write_streaming_header(&mut out, 200, "text/csv").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(!text.contains("Content-Length"));
        assert!(text.ends_with("\r\n\r\n"));
    }
}
