//! Query parsing and execution: the path every request takes, shared by the
//! HTTP handler, the tests and the bench so all three measure the same code.
//!
//! A query names a pattern (catalog name or inline spec), a mode (`count` or
//! `enumerate`), an output format, and optionally a reducer budget and a
//! thread count. Execution resolves the pattern, consults the plan cache
//! (planning on a miss, [`subgraph_core::plan::Planner::resume`]-ing on a
//! hit), and runs the chosen strategy — counting through a zero-allocation
//! [`subgraph_core::sink::CountSink`], or streaming instances straight into
//! the response writer through [`NdjsonSink`]/[`CsvSink`].

use crate::cache::{CachedPlan, PlanCache, PlanKey};
use crate::store::GraphStore;
use std::io::Write;
use std::sync::Arc;
use std::time::Duration;
use subgraph_core::plan::{EnumerationRequest, PlanError, Planner, StrategyKind};
use subgraph_core::sink::{CsvSink, NdjsonSink, SerializeSink};
use subgraph_mapreduce::{EngineConfig, WorkerPool};
use subgraph_pattern::automorphism_group;

/// What to do with the matching instances.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueryMode {
    /// Count instances; O(1) memory, no instance ever materialized.
    Count,
    /// Stream every instance to the client.
    Enumerate,
}

/// Serialization format for `enumerate` responses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OutputFormat {
    /// Newline-delimited JSON, one instance object per line.
    Ndjson,
    /// CSV with a `nodes,edges` header.
    Csv,
}

impl OutputFormat {
    /// The HTTP `Content-Type` for this format.
    pub fn content_type(self) -> &'static str {
        match self {
            OutputFormat::Ndjson => "application/x-ndjson",
            OutputFormat::Csv => "text/csv",
        }
    }
}

/// One parsed query.
#[derive(Clone, Debug)]
pub struct QueryRequest {
    /// Catalog name or inline spec (`a-b,b-c,c-a`).
    pub pattern: String,
    /// Count or enumerate.
    pub mode: QueryMode,
    /// Serialization format for enumerate responses.
    pub format: OutputFormat,
    /// Reducer budget `k`; `None` uses the engine default.
    pub reducers: Option<usize>,
    /// Worker threads for this query; `None` uses the server's budget.
    pub threads: Option<usize>,
}

impl QueryRequest {
    /// A count query for `pattern` with every default.
    pub fn count(pattern: &str) -> Self {
        QueryRequest {
            pattern: pattern.to_string(),
            mode: QueryMode::Count,
            format: OutputFormat::Ndjson,
            reducers: None,
            threads: None,
        }
    }

    /// An enumerate query for `pattern` with every default.
    pub fn enumerate(pattern: &str) -> Self {
        QueryRequest {
            mode: QueryMode::Enumerate,
            ..QueryRequest::count(pattern)
        }
    }

    /// Builds a request from decoded `key=value` query parameters.
    /// Unknown keys are rejected so typos fail loudly instead of silently
    /// running a default query.
    pub fn from_params<'a>(
        params: impl IntoIterator<Item = (&'a str, &'a str)>,
    ) -> Result<Self, QueryError> {
        let mut pattern: Option<String> = None;
        let mut mode = QueryMode::Count;
        let mut format = OutputFormat::Ndjson;
        let mut reducers = None;
        let mut threads = None;
        for (key, value) in params {
            match key {
                // A client may ship the contents of a pattern *file* (the
                // CLI's `--pattern-file` dialect: one edge per line, `#`
                // comments) straight into the parameter; multi-line or
                // commented text is normalized to a one-line spec, while
                // plain inline specs keep their strict parsing.
                "pattern" => {
                    pattern = Some(if value.contains('\n') || value.contains('#') {
                        subgraph_pattern::normalize_spec_text(value)
                    } else {
                        value.to_string()
                    })
                }
                "mode" => {
                    mode = match value {
                        "count" => QueryMode::Count,
                        "enumerate" => QueryMode::Enumerate,
                        other => {
                            return Err(QueryError::bad(format!(
                                "unknown mode {other:?} (try count or enumerate)"
                            )))
                        }
                    }
                }
                "format" => {
                    format = match value {
                        "ndjson" => OutputFormat::Ndjson,
                        "csv" => OutputFormat::Csv,
                        other => {
                            return Err(QueryError::bad(format!(
                                "unknown format {other:?} (try ndjson or csv)"
                            )))
                        }
                    }
                }
                "reducers" => {
                    reducers = Some(value.parse().map_err(|_| {
                        QueryError::bad(format!("reducers must be an integer, got {value:?}"))
                    })?)
                }
                "threads" => {
                    let t: usize = value.parse().map_err(|_| {
                        QueryError::bad(format!("threads must be an integer, got {value:?}"))
                    })?;
                    if t == 0 {
                        return Err(QueryError::bad("threads must be at least 1".to_string()));
                    }
                    threads = Some(t);
                }
                other => {
                    return Err(QueryError::bad(format!(
                        "unknown query parameter {other:?}"
                    )))
                }
            }
        }
        let pattern =
            pattern.ok_or_else(|| QueryError::bad("missing required parameter: pattern".into()))?;
        Ok(QueryRequest {
            pattern,
            mode,
            format,
            reducers,
            threads,
        })
    }
}

/// Why a query failed. [`QueryError::BadRequest`] is the client's fault
/// (HTTP 400); [`QueryError::Io`] is a response-write failure (the client
/// went away — nothing to send).
#[derive(Debug)]
pub enum QueryError {
    /// Malformed query: unknown pattern, bad spec, bad parameter.
    BadRequest(String),
    /// Writing the response failed.
    Io(std::io::Error),
}

impl QueryError {
    fn bad(reason: String) -> Self {
        QueryError::BadRequest(reason)
    }
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::BadRequest(reason) => write!(f, "bad request: {reason}"),
            QueryError::Io(e) => write!(f, "response write failed: {e}"),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<PlanError> for QueryError {
    fn from(e: PlanError) -> Self {
        QueryError::BadRequest(e.to_string())
    }
}

impl From<std::io::Error> for QueryError {
    fn from(e: std::io::Error) -> Self {
        QueryError::Io(e)
    }
}

/// What executing one query produced, besides the bytes already streamed.
#[derive(Clone, Debug)]
pub struct QueryOutcome {
    /// Instances counted (count mode) or serialized (enumerate mode).
    pub count: usize,
    /// True when the plan came from the cache (zero planning work).
    pub cache_hit: bool,
    /// The strategy that ran.
    pub strategy: StrategyKind,
    /// Order of the pattern's automorphism group `|Aut(S)|`.
    pub automorphisms: usize,
    /// Wall-clock execution time (excludes response serialization only in
    /// count mode, where there is nothing to serialize).
    pub elapsed: Duration,
}

/// Everything needed to execute queries: the shared store, the plan cache
/// and a planner. One per server; cheap to share behind an `Arc`.
pub struct QueryEngine {
    store: GraphStore,
    cache: PlanCache,
    planner: Planner,
    /// Per-query thread budget: requests may ask for fewer, never more.
    max_threads: usize,
    /// One persistent map-reduce worker pool shared by every query this
    /// engine serves, so per-request thread spawn/join churn never lands on
    /// the query path. Sized to the thread budget: the calling connection
    /// worker participates, so `max_threads - 1` pool workers give each
    /// query its full budget.
    pool: Arc<WorkerPool>,
    /// Per-query resident-memory budget for the shuffle (bytes;
    /// 0 = unbounded). See [`QueryEngine::with_memory_budget`].
    memory_budget: usize,
    /// Base directory for spill run files (`None` = OS temp dir).
    spill_dir: Option<std::path::PathBuf>,
}

impl QueryEngine {
    /// Wraps a store with a plan cache of `cache_capacity` entries and a
    /// per-query thread budget of `max_threads`.
    pub fn new(store: GraphStore, cache_capacity: usize, max_threads: usize) -> Self {
        let max_threads = max_threads.max(1);
        QueryEngine {
            store,
            cache: PlanCache::new(cache_capacity),
            planner: Planner::new(),
            max_threads,
            pool: Arc::new(WorkerPool::new(max_threads - 1)),
            memory_budget: 0,
            spill_dir: None,
        }
    }

    /// Bounds every query's resident shuffle memory to `budget` bytes
    /// (0 = unbounded), spilling arena runs into `spill_dir` (`None` = the
    /// OS temp dir) past it. Validate the directory up front with
    /// [`subgraph_mapreduce::EngineConfig::validate_spill_dir`]; the engine
    /// assumes it is writable.
    pub fn with_memory_budget(
        mut self,
        budget: usize,
        spill_dir: Option<std::path::PathBuf>,
    ) -> Self {
        self.memory_budget = budget;
        self.spill_dir = spill_dir;
        self
    }

    /// The shared graph store.
    pub fn store(&self) -> &GraphStore {
        &self.store
    }

    /// The plan cache (counters feed `/stats`).
    pub fn cache(&self) -> &PlanCache {
        &self.cache
    }

    /// The per-query thread budget.
    pub fn max_threads(&self) -> usize {
        self.max_threads
    }

    /// The persistent map-reduce worker pool every query runs on.
    pub fn pool(&self) -> &Arc<WorkerPool> {
        &self.pool
    }

    /// Checks that `query` names a resolvable pattern without planning or
    /// executing anything. The HTTP handler calls this before committing to
    /// a streaming response, so a bad pattern is a clean 400 instead of an
    /// error wedged mid-stream after a 200 header.
    pub fn validate(&self, query: &QueryRequest) -> Result<(), QueryError> {
        EnumerationRequest::resolve(&query.pattern, self.store.graph())?;
        Ok(())
    }

    /// Executes `query`, streaming enumerate output into `writer` (count
    /// queries never touch it). Returns the outcome for the response
    /// envelope and the metrics.
    pub fn execute<W: Write + Send>(
        &self,
        query: &QueryRequest,
        writer: W,
    ) -> Result<QueryOutcome, QueryError> {
        let started = std::time::Instant::now();
        let mut request = EnumerationRequest::resolve(&query.pattern, self.store.graph())?;
        if let Some(k) = query.reducers {
            request = request.reducers(k);
        }
        let threads = query
            .threads
            .unwrap_or(self.max_threads)
            .min(self.max_threads);
        let mut engine = EngineConfig::with_threads(threads).with_pool(Arc::clone(&self.pool));
        if self.memory_budget > 0 {
            engine = engine.memory_budget(self.memory_budget);
        }
        if let Some(dir) = &self.spill_dir {
            engine = engine.spill_dir(dir.clone());
        }
        request = request.engine(engine);
        let automorphisms = automorphism_group(request.sample()).len();

        // Plan-cache consultation: a hit resumes with zero re-estimation, a
        // miss pays for planning once and publishes the decision.
        let key = PlanKey::new(
            request.sample(),
            self.store.fingerprint(),
            request.reducer_budget(),
        );
        let (plan, cache_hit) = match self.cache.lookup(&key) {
            Some(cached) => (
                self.planner
                    .resume(request, cached.chosen, cached.candidates)?,
                true,
            ),
            None => {
                let plan = self.planner.plan(request)?;
                self.cache.insert(
                    key,
                    CachedPlan {
                        chosen: plan.chosen().clone(),
                        candidates: plan.candidates().to_vec(),
                    },
                );
                (plan, false)
            }
        };
        let strategy = plan.strategy();

        let count = match query.mode {
            QueryMode::Count => plan.count().count(),
            QueryMode::Enumerate => match query.format {
                OutputFormat::Ndjson => {
                    let mut sink = NdjsonSink::new(writer);
                    plan.run_with_sink(&mut sink);
                    sink.finish()?
                }
                OutputFormat::Csv => {
                    let mut sink = CsvSink::new(writer);
                    plan.run_with_sink(&mut sink);
                    sink.finish()?
                }
            },
        };
        Ok(QueryOutcome {
            count,
            cache_hit,
            strategy,
            automorphisms,
            elapsed: started.elapsed(),
        })
    }
}

impl std::fmt::Debug for QueryEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryEngine")
            .field("store", &self.store.source())
            .field("cache", &self.cache)
            .field("max_threads", &self.max_threads)
            .field("pool_workers", &self.pool.workers())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subgraph_graph::generators;

    fn engine() -> QueryEngine {
        QueryEngine::new(GraphStore::from_graph(generators::complete(5)), 8, 1)
    }

    #[test]
    fn count_queries_count_without_writing() {
        let e = engine();
        let mut out = Vec::new();
        let outcome = e
            .execute(&QueryRequest::count("triangle"), &mut out)
            .unwrap();
        assert_eq!(outcome.count, 10); // C(5, 3) triangles in K5
        assert_eq!(outcome.automorphisms, 6);
        assert!(out.is_empty(), "count mode writes nothing");
        assert!(!outcome.cache_hit);
    }

    #[test]
    fn repeated_queries_hit_the_cache() {
        let e = engine();
        let first = e
            .execute(&QueryRequest::count("triangle"), std::io::sink())
            .unwrap();
        let second = e
            .execute(&QueryRequest::count("triangle"), std::io::sink())
            .unwrap();
        assert!(!first.cache_hit);
        assert!(second.cache_hit);
        assert_eq!(first.count, second.count);
        assert_eq!(first.strategy, second.strategy);
        assert_eq!(e.cache().hits(), 1);
        assert_eq!(e.cache().misses(), 1);
        // The inline spec of the same shape shares the entry.
        let spec = e
            .execute(&QueryRequest::count("a-b,b-c,c-a"), std::io::sink())
            .unwrap();
        assert!(spec.cache_hit);
        assert_eq!(spec.count, 10);
    }

    #[test]
    fn enumerate_streams_ndjson() {
        let e = engine();
        let mut out = Vec::new();
        let outcome = e
            .execute(&QueryRequest::enumerate("triangle"), &mut out)
            .unwrap();
        assert_eq!(outcome.count, 10);
        let text = String::from_utf8(out).unwrap();
        assert_eq!(text.lines().count(), 10);
        assert!(text.lines().all(|l| l.starts_with("{\"nodes\":[")));
    }

    #[test]
    fn enumerate_streams_csv() {
        let e = engine();
        let mut out = Vec::new();
        let mut query = QueryRequest::enumerate("triangle");
        query.format = OutputFormat::Csv;
        let outcome = e.execute(&query, &mut out).unwrap();
        assert_eq!(outcome.count, 10);
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("nodes,edges\n"));
        assert_eq!(text.lines().count(), 11);
    }

    #[test]
    fn bad_patterns_are_bad_requests() {
        let e = engine();
        for pattern in ["dodecahedron", "a-a", "a-b,,b-c"] {
            match e.execute(&QueryRequest::count(pattern), std::io::sink()) {
                Err(QueryError::BadRequest(_)) => {}
                other => panic!("expected BadRequest for {pattern:?}, got {other:?}"),
            }
        }
    }

    #[test]
    fn params_parse_with_defaults_and_reject_unknowns() {
        let q = QueryRequest::from_params([("pattern", "triangle")]).unwrap();
        assert_eq!(q.mode, QueryMode::Count);
        assert_eq!(q.format, OutputFormat::Ndjson);
        assert!(q.reducers.is_none());

        let q = QueryRequest::from_params([
            ("pattern", "square"),
            ("mode", "enumerate"),
            ("format", "csv"),
            ("reducers", "128"),
            ("threads", "2"),
        ])
        .unwrap();
        assert_eq!(q.mode, QueryMode::Enumerate);
        assert_eq!(q.format, OutputFormat::Csv);
        assert_eq!(q.reducers, Some(128));
        assert_eq!(q.threads, Some(2));

        for bad in [
            vec![("mode", "count")],                        // missing pattern
            vec![("pattern", "triangle"), ("mode", "x")],   // bad mode
            vec![("pattern", "triangle"), ("format", "x")], // bad format
            vec![("pattern", "triangle"), ("reducers", "x")],
            vec![("pattern", "triangle"), ("threads", "0")],
            vec![("pattern", "triangle"), ("nope", "1")], // unknown key
        ] {
            assert!(QueryRequest::from_params(bad).is_err());
        }
    }

    #[test]
    fn pattern_file_contents_are_accepted_as_pattern_text() {
        let file_text = "# the triangle, one edge per line\na-b\nb-c\nc-a\n";
        let q = QueryRequest::from_params([("pattern", file_text)]).unwrap();
        assert_eq!(q.pattern, "a-b,b-c,c-a");
        let outcome = engine().execute(&q, std::io::sink()).unwrap();
        assert_eq!(outcome.count, 10);
        // One-line specs stay strict: no silent repair of empty edges.
        let strict = QueryRequest::from_params([("pattern", "a-b,,b-c")]).unwrap();
        assert_eq!(strict.pattern, "a-b,,b-c");
        assert!(matches!(
            engine().execute(&strict, std::io::sink()),
            Err(QueryError::BadRequest(_))
        ));
    }

    #[test]
    fn thread_requests_are_capped_by_the_server_budget() {
        let e = QueryEngine::new(GraphStore::from_graph(generators::complete(5)), 8, 2);
        let mut query = QueryRequest::count("triangle");
        query.threads = Some(64);
        // Succeeds and stays within budget (indirectly: no panic, right count).
        let outcome = e.execute(&query, std::io::sink()).unwrap();
        assert_eq!(outcome.count, 10);
    }

    #[test]
    fn reducer_budget_is_part_of_the_cache_key() {
        let e = engine();
        e.execute(&QueryRequest::count("triangle"), std::io::sink())
            .unwrap();
        let mut serial = QueryRequest::count("triangle");
        serial.reducers = Some(1);
        let outcome = e.execute(&serial, std::io::sink()).unwrap();
        assert!(!outcome.cache_hit, "different budget, different plan");
        assert!(outcome.strategy.is_serial());
        assert_eq!(outcome.count, 10);
    }
}
