//! A minimal blocking HTTP client for the tests, the bench and the CI smoke
//! job. It speaks exactly the dialect the server emits: one request per
//! connection, `Connection: close`, body read to EOF.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};

/// A fully-read response.
#[derive(Debug)]
pub struct HttpResponse {
    /// Status code from the status line.
    pub status: u16,
    /// Response headers, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The body, read to EOF.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// The value of `name` (case-insensitive), if present.
    pub fn header(&self, name: &str) -> Option<String> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.clone())
    }

    /// The body as UTF-8, panicking with context on invalid bytes.
    pub fn text(&self) -> String {
        String::from_utf8(self.body.clone()).expect("response body is UTF-8")
    }
}

/// GETs `target` (path plus optional query string) from a TCP server.
pub fn get(addr: &SocketAddr, target: &str) -> io::Result<HttpResponse> {
    let stream = TcpStream::connect(addr)?;
    request(stream, target)
}

/// GETs `target` from a unix-domain-socket server.
#[cfg(unix)]
pub fn get_unix(path: &std::path::Path, target: &str) -> io::Result<HttpResponse> {
    let stream = std::os::unix::net::UnixStream::connect(path)?;
    request(stream, target)
}

fn request<S: Read + Write>(mut stream: S, target: &str) -> io::Result<HttpResponse> {
    write!(stream, "GET {target} HTTP/1.1\r\nConnection: close\r\n\r\n")?;
    stream.flush()?;
    read_response(BufReader::new(stream))
}

fn read_response<R: BufRead>(mut reader: R) -> io::Result<HttpResponse> {
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("malformed status line {status_line:?}"),
            )
        })?;
    let mut headers = Vec::new();
    loop {
        let mut line = String::new();
        reader.read_line(&mut line)?;
        let line = line.trim_end_matches(['\r', '\n']);
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
    }
    let mut body = Vec::new();
    reader.read_to_end(&mut body)?;
    Ok(HttpResponse {
        status,
        headers,
        body,
    })
}
