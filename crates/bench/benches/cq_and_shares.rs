//! Benches for the planning layers: CQ generation (Theorem 3.1, Section 5),
//! share optimization (Section 4) and the full planner.

use std::time::Duration;
use subgraph_bench::harness::{BenchmarkId, Criterion};
use subgraph_bench::{criterion_group, criterion_main};
use subgraph_core::plan::EnumerationRequest;
use subgraph_cq::{cqs_for_sample, cycle_cqs, merge_by_orientation};
use subgraph_graph::generators;
use subgraph_pattern::catalog;
use subgraph_shares::dominance::single_cq_expression_with_dominance;
use subgraph_shares::{optimize_shares, CostExpression};

fn bench_cq_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("cq/generation");
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);
    for (name, pattern) in [
        ("square", catalog::square()),
        ("lollipop", catalog::lollipop()),
        ("c6", catalog::cycle(6)),
        ("k4", catalog::k4()),
    ] {
        group.bench_with_input(BenchmarkId::new("theorem_3_1", name), &pattern, |b, p| {
            b.iter(|| cqs_for_sample(p).len())
        });
        group.bench_with_input(
            BenchmarkId::new("orientation_merge", name),
            &pattern,
            |b, p| b.iter(|| merge_by_orientation(&cqs_for_sample(p)).len()),
        );
    }
    for p in [5usize, 7, 9] {
        group.bench_with_input(BenchmarkId::new("cycle_run_sequences", p), &p, |b, &p| {
            b.iter(|| cycle_cqs(p).len())
        });
    }
    group.finish();
}

fn bench_share_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("shares/solver");
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);
    let lollipop_cq = cqs_for_sample(&catalog::lollipop())
        .into_iter()
        .find(|q| q.subgoals() == [(0, 1), (1, 2), (1, 3), (2, 3)])
        .unwrap();
    let lollipop_expr = single_cq_expression_with_dominance(&lollipop_cq);
    group.bench_function("lollipop_example_4_1", |b| {
        b.iter(|| optimize_shares(&lollipop_expr, 750.0).cost_per_edge)
    });
    let square_expr = CostExpression::from_cq_collection(&cqs_for_sample(&catalog::square()));
    group.bench_function("square_example_4_2", |b| {
        b.iter(|| optimize_shares(&square_expr, 512.0).cost_per_edge)
    });
    let hexagon_expr = CostExpression::from_cq_collection(&cqs_for_sample(&catalog::cycle(6)));
    group.bench_function("hexagon_example_4_3", |b| {
        b.iter(|| optimize_shares(&hexagon_expr, 500_000.0).cost_per_edge)
    });
    group.finish();
}

fn bench_planner(c: &mut Criterion) {
    let graph = generators::gnm(500, 4_000, 6);
    let mut group = c.benchmark_group("planner/plan");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(1));
    group.sample_size(10);
    for name in ["triangle", "square", "lollipop"] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &name, |b, &name| {
            b.iter(|| {
                EnumerationRequest::named(name, &graph)
                    .unwrap()
                    .reducers(220)
                    .plan()
                    .unwrap()
                    .strategy()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_cq_generation,
    bench_share_solver,
    bench_planner
);
criterion_main!(benches);
