//! The tracked shuffle throughput benchmark: triangle enumeration through the
//! multiway join at engine thread counts {1, 2, 4, 8}.
//!
//! Writes `BENCH_shuffle.json` at the repository root (full mode) or a
//! scratch file under `target/` (`-- --quick`, the CI smoke mode, which also
//! validates the tracked file) and fails (panics) if either file is not
//! well-formed JSON.

fn main() {
    let quick = std::env::args().any(|arg| arg == "--quick");
    print!("{}", subgraph_bench::shuffle::shuffle_throughput(quick));
    println!(
        "\nwrote {}",
        subgraph_bench::shuffle::output_json_path(quick).display()
    );
}
