//! The tracked streaming-sink benchmark: count-only triangle enumeration on
//! a ≥ 1M-edge sparse G(n, p) graph at engine thread counts {1, 2, 4, 8}.
//!
//! Writes `BENCH_sink.json` at the repository root (full mode) or a scratch
//! file under `target/` (`-- --quick`, the CI smoke mode, which also
//! validates the tracked file) and fails (panics) if either file is not
//! well-formed JSON.

fn main() {
    let quick = std::env::args().any(|arg| arg == "--quick");
    print!("{}", subgraph_bench::sink_bench::sink_throughput(quick));
    println!(
        "\nwrote {}",
        subgraph_bench::sink_bench::output_json_path(quick).display()
    );
}
