//! Benches for the serial algorithms of Sections 6–7: the generic matcher
//! (baseline), the decomposition join (Theorem 7.2), OddCycle (Algorithm 1)
//! and the bounded-degree algorithm (Theorem 7.3).

use std::time::Duration;
use subgraph_bench::harness::Criterion;
use subgraph_bench::{criterion_group, criterion_main};
use subgraph_core::serial::{
    enumerate_bounded_degree, enumerate_by_decomposition, enumerate_generic, enumerate_odd_cycles,
};
use subgraph_graph::generators;
use subgraph_pattern::catalog;

fn bench_serial_algorithms(c: &mut Criterion) {
    let random = generators::gnm(60, 350, 2);
    let capped = generators::bounded_degree(400, 1_200, 10, 3);
    let tree = generators::regular_tree(6, 3);

    let mut group = c.benchmark_group("serial/square");
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);
    group.bench_function("generic", |b| {
        b.iter(|| enumerate_generic(&catalog::square(), &random).count())
    });
    group.bench_function("decomposition", |b| {
        b.iter(|| enumerate_by_decomposition(&catalog::square(), &random).count())
    });
    group.bench_function("bounded_degree_on_capped", |b| {
        b.iter(|| enumerate_bounded_degree(&catalog::square(), &capped).count())
    });
    group.finish();

    let mut cycles = c.benchmark_group("serial/pentagon");
    cycles.warm_up_time(Duration::from_secs(1));
    cycles.measurement_time(Duration::from_secs(2));
    cycles.sample_size(10);
    let small = generators::gnm(25, 90, 4);
    cycles.bench_function("odd_cycle_algorithm", |b| {
        b.iter(|| enumerate_odd_cycles(&small, 2).count())
    });
    cycles.bench_function("generic", |b| {
        b.iter(|| enumerate_generic(&catalog::cycle(5), &small).count())
    });
    cycles.bench_function("decomposition", |b| {
        b.iter(|| enumerate_by_decomposition(&catalog::cycle(5), &small).count())
    });
    cycles.finish();

    let mut stars = c.benchmark_group("serial/stars_on_tree");
    stars.warm_up_time(Duration::from_secs(1));
    stars.measurement_time(Duration::from_secs(2));
    stars.sample_size(10);
    stars.bench_function("bounded_degree", |b| {
        b.iter(|| enumerate_bounded_degree(&catalog::star(4), &tree).count())
    });
    stars.bench_function("generic", |b| {
        b.iter(|| enumerate_generic(&catalog::star(4), &tree).count())
    });
    stars.finish();
}

criterion_group!(benches, bench_serial_algorithms);
criterion_main!(benches);
