//! Criterion benches for the three single-round triangle algorithms of
//! Section 2 (the timing counterpart of Figures 1 and 2) plus the serial
//! baseline.

use std::time::Duration;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use subgraph_core::serial::enumerate_triangles_serial;
use subgraph_core::triangles::{bucket_ordered_triangles, multiway_triangles, partition_triangles};
use subgraph_graph::generators;
use subgraph_mapreduce::EngineConfig;

fn bench_triangle_algorithms(c: &mut Criterion) {
    let graph = generators::gnm(1_000, 10_000, 1);
    let config = EngineConfig::default();

    let mut group = c.benchmark_group("triangles/figure2");
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);
    group.sample_size(10);
    group.bench_function("serial_m32", |bencher| {
        bencher.iter(|| enumerate_triangles_serial(&graph).count())
    });
    group.bench_function("partition_b12", |bencher| {
        bencher.iter(|| partition_triangles(&graph, 12, &config).count())
    });
    group.bench_function("multiway_b6", |bencher| {
        bencher.iter(|| multiway_triangles(&graph, 6, &config).count())
    });
    group.bench_function("bucket_ordered_b10", |bencher| {
        bencher.iter(|| bucket_ordered_triangles(&graph, 10, &config).count())
    });
    group.finish();

    // Sweep of b for the bucket-ordered algorithm: communication grows with b
    // while total reducer work stays flat (convertibility, Theorem 6.1).
    let mut sweep = c.benchmark_group("triangles/bucket_ordered_sweep");
    sweep.warm_up_time(Duration::from_secs(1));
    sweep.measurement_time(Duration::from_secs(2));
    sweep.sample_size(10);
    sweep.sample_size(10);
    for b in [2usize, 4, 8, 16] {
        sweep.bench_with_input(BenchmarkId::from_parameter(b), &b, |bencher, &b| {
            bencher.iter(|| bucket_ordered_triangles(&graph, b, &config).count())
        });
    }
    sweep.finish();
}

criterion_group!(benches, bench_triangle_algorithms);
criterion_main!(benches);
