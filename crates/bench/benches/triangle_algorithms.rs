//! Benches for the three single-round triangle algorithms of Section 2 (the
//! timing counterpart of Figures 1 and 2) plus the serial baseline, all driven
//! through the planner's strategy overrides.

use std::time::Duration;
use subgraph_bench::harness::{BenchmarkId, Criterion};
use subgraph_bench::{criterion_group, criterion_main};
use subgraph_core::plan::{EnumerationRequest, StrategyKind};
use subgraph_core::serial::enumerate_triangles_serial;
use subgraph_graph::{generators, DataGraph};
use subgraph_pattern::catalog;
use subgraph_shares::counting::{binomial, useful_reducers};

fn count_triangles(graph: &DataGraph, kind: StrategyKind, budget: usize) -> usize {
    EnumerationRequest::new(catalog::triangle(), graph)
        .reducers(budget)
        .strategy(kind)
        .plan()
        .expect("triangle strategy applies")
        .execute()
        .count()
}

fn bench_triangle_algorithms(c: &mut Criterion) {
    let graph = generators::gnm(1_000, 10_000, 1);

    let mut group = c.benchmark_group("triangles/figure2");
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);
    group.bench_function("serial_m32", |bencher| {
        bencher.iter(|| enumerate_triangles_serial(&graph).count())
    });
    group.bench_function("partition_b12", |bencher| {
        bencher.iter(|| count_triangles(&graph, StrategyKind::PartitionTriangles, 220))
    });
    group.bench_function("multiway_b6", |bencher| {
        bencher.iter(|| count_triangles(&graph, StrategyKind::MultiwayTriangles, 216))
    });
    group.bench_function("bucket_ordered_b10", |bencher| {
        bencher.iter(|| count_triangles(&graph, StrategyKind::BucketOrderedTriangles, 220))
    });
    group.finish();

    // Sweep of b for the bucket-ordered algorithm: communication grows with b
    // while total reducer work stays flat (convertibility, Theorem 6.1).
    let mut sweep = c.benchmark_group("triangles/bucket_ordered_sweep");
    sweep.warm_up_time(Duration::from_secs(1));
    sweep.measurement_time(Duration::from_secs(2));
    sweep.sample_size(10);
    for b in [2usize, 4, 8, 16] {
        let budget = useful_reducers(b as u64, 3) as usize;
        sweep.bench_with_input(
            BenchmarkId::from_parameter(b),
            &budget,
            |bencher, &budget| {
                bencher
                    .iter(|| count_triangles(&graph, StrategyKind::BucketOrderedTriangles, budget))
            },
        );
    }
    sweep.finish();

    // The planner itself: estimate every strategy and pick (no execution).
    let mut planning = c.benchmark_group("triangles/planning");
    planning.warm_up_time(Duration::from_millis(300));
    planning.measurement_time(Duration::from_secs(1));
    planning.sample_size(10);
    for k in [binomial(12, 3) as usize, 1_000] {
        planning.bench_with_input(BenchmarkId::new("plan", k), &k, |bencher, &k| {
            bencher.iter(|| {
                EnumerationRequest::new(catalog::triangle(), &graph)
                    .reducers(k)
                    .plan()
                    .unwrap()
                    .strategy()
            })
        });
    }
    planning.finish();
}

criterion_group!(benches, bench_triangle_algorithms);
criterion_main!(benches);
