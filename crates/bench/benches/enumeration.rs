//! Criterion benches for the three map-reduce processing strategies of
//! Section 4 on arbitrary sample graphs.

use std::time::Duration;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use subgraph_core::enumerate::{
    bucket_oriented_enumerate, cq_oriented_enumerate, variable_oriented_enumerate,
};
use subgraph_graph::generators;
use subgraph_mapreduce::EngineConfig;
use subgraph_pattern::catalog;

fn bench_enumeration_strategies(c: &mut Criterion) {
    let graph = generators::gnm(200, 1_400, 5);
    let config = EngineConfig::default();

    for (name, pattern) in [("square", catalog::square()), ("lollipop", catalog::lollipop())] {
        let mut group = c.benchmark_group(format!("enumerate/{name}"));
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);
        group.sample_size(10);
        group.bench_function("variable_oriented_k64", |b| {
            b.iter(|| variable_oriented_enumerate(&pattern, &graph, 64, &config).count())
        });
        group.bench_function("cq_oriented_k64", |b| {
            b.iter(|| cq_oriented_enumerate(&pattern, &graph, 64, &config).count())
        });
        for buckets in [2usize, 4] {
            group.bench_with_input(
                BenchmarkId::new("bucket_oriented", buckets),
                &buckets,
                |b, &buckets| {
                    b.iter(|| bucket_oriented_enumerate(&pattern, &graph, buckets, &config).count())
                },
            );
        }
        group.finish();
    }
}

criterion_group!(benches, bench_enumeration_strategies);
criterion_main!(benches);
