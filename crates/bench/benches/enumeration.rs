//! Benches for the three map-reduce processing strategies of Section 4 on
//! arbitrary sample graphs, driven through the planner.

use std::time::Duration;
use subgraph_bench::harness::{BenchmarkId, Criterion};
use subgraph_bench::{criterion_group, criterion_main};
use subgraph_core::plan::{EnumerationRequest, StrategyKind};
use subgraph_graph::{generators, DataGraph};
use subgraph_pattern::{catalog, SampleGraph};
use subgraph_shares::counting::useful_reducers;

fn count(graph: &DataGraph, sample: &SampleGraph, kind: StrategyKind, budget: usize) -> usize {
    EnumerationRequest::new(sample.clone(), graph)
        .reducers(budget)
        .strategy(kind)
        .plan()
        .expect("strategy applies")
        .execute()
        .count()
}

fn bench_enumeration_strategies(c: &mut Criterion) {
    let graph = generators::gnm(200, 1_400, 5);

    for (name, pattern) in [
        ("square", catalog::square()),
        ("lollipop", catalog::lollipop()),
    ] {
        let mut group = c.benchmark_group(format!("enumerate/{name}"));
        group.warm_up_time(Duration::from_secs(1));
        group.measurement_time(Duration::from_secs(2));
        group.sample_size(10);
        group.bench_function("variable_oriented_k64", |b| {
            b.iter(|| count(&graph, &pattern, StrategyKind::VariableOriented, 64))
        });
        group.bench_function("cq_oriented_k64", |b| {
            b.iter(|| count(&graph, &pattern, StrategyKind::CqOriented, 64))
        });
        for buckets in [2usize, 4] {
            let budget = useful_reducers(buckets as u64, pattern.num_nodes() as u64) as usize;
            group.bench_with_input(
                BenchmarkId::new("bucket_oriented", buckets),
                &budget,
                |b, &budget| {
                    b.iter(|| count(&graph, &pattern, StrategyKind::BucketOriented, budget))
                },
            );
        }
        group.bench_function("planned_k64", |b| {
            b.iter(|| {
                EnumerationRequest::new(pattern.clone(), &graph)
                    .reducers(64)
                    .plan()
                    .unwrap()
                    .execute()
                    .count()
            })
        });
        group.finish();
    }
}

criterion_group!(benches, bench_enumeration_strategies);
criterion_main!(benches);
