//! Benchmark harness: regenerates every table and figure of the paper.
//!
//! Each module returns plain-text tables (and the underlying numbers) so that
//! the `reproduce` binary can print them and `EXPERIMENTS.md` can quote them.
//! Analytic columns come from the formulas implemented in `subgraph-shares`
//! and `subgraph-cq`; measured columns come from actually running the
//! algorithms of `subgraph-core` on the instrumented map-reduce engine over
//! synthetic data graphs.
//!
//! | paper artifact | function |
//! |---|---|
//! | Figure 1 (asymptotic triangle comparison) | [`figures::figure1`] |
//! | Figure 2 (specific reducer counts) | [`figures::figure2`] |
//! | Section 2.2 / footnote 1 (map-side combiner effect) | [`figures::combiner_table`] |
//! | Example 3.1–3.2 / Figure 3 (square CQs) | [`cq_tables::square_cqs`] |
//! | Figures 5–7 (lollipop CQs) | [`cq_tables::lollipop_cqs`] |
//! | Section 5 / Examples 5.3–5.5 (cycle CQs) | [`cq_tables::cycle_cq_table`] |
//! | Example 4.1 (lollipop shares) | [`share_tables::lollipop_shares`] |
//! | Example 4.2 (square, variable-oriented) | [`share_tables::square_shares`] |
//! | Example 4.3 / Theorem 4.3 (hexagon) | [`share_tables::hexagon_shares`] |
//! | Theorem 4.2 (useful reducers) | [`share_tables::useful_reducer_table`] |
//! | Section 4.5 (Partition vs bucket-oriented ratio) | [`share_tables::partition_ratio_table`] |
//! | Theorem 4.4 (combined vs separate CQ jobs) | [`share_tables::combined_vs_separate`] |
//! | Theorem 6.1 / Example 6.1 (convertibility) | [`computation::convertibility_table`] |
//! | Algorithm 1 / Theorem 7.1 (OddCycle) | [`computation::odd_cycle_table`] |
//! | Theorem 7.2 (decomposition algorithms) | [`computation::decomposition_table`] |
//! | Theorem 7.3 (bounded degree) | [`computation::bounded_degree_table`] |
//! | Section 7.4 (relation sizes) | [`computation::relation_size_table`] |
//! | strategy choice (Sections 2, 4, 6-7) | [`planner_table::planner_choices`] |
//! | shuffle throughput sweep (engine perf trajectory) | [`shuffle::shuffle_throughput`] |
//! | streaming-sink sweep (count-only, ≥ 1M edges, peak RSS) | [`sink_bench::sink_throughput`] |
//! | serve amortization (warm cached queries vs one-shot) | [`serve_bench::serve_amortization`] |
//! | CLI parity (`enumerate \| wc -l` vs `count`) | [`cli_table::cli_parity`] |
//!
//! The measured columns drive every algorithm through the
//! `EnumerationRequest`/`Planner` API of `subgraph-core`; [`harness`] is the
//! dependency-free criterion-compatible micro-bench harness the `benches/`
//! targets run on.

pub mod cli_table;
pub mod computation;
pub mod cq_tables;
pub mod figures;
pub mod harness;
pub mod planner_table;
pub mod report;
pub mod serve_bench;
pub mod share_tables;
pub mod shuffle;
pub mod sink_bench;

/// Runs every reproduction and concatenates the reports (the `all` subcommand).
pub fn run_all() -> String {
    let mut out = String::new();
    out.push_str(&planner_table::planner_choices());
    out.push_str(&figures::figure1());
    out.push_str(&figures::figure2());
    out.push_str(&figures::cascade_comparison());
    out.push_str(&figures::combiner_table());
    out.push_str(&cq_tables::square_cqs());
    out.push_str(&cq_tables::lollipop_cqs());
    out.push_str(&cq_tables::cycle_cq_table());
    out.push_str(&share_tables::lollipop_shares());
    out.push_str(&share_tables::square_shares());
    out.push_str(&share_tables::hexagon_shares());
    out.push_str(&share_tables::useful_reducer_table());
    out.push_str(&share_tables::partition_ratio_table());
    out.push_str(&share_tables::combined_vs_separate());
    out.push_str(&computation::convertibility_table());
    out.push_str(&computation::odd_cycle_table());
    out.push_str(&computation::decomposition_table());
    out.push_str(&computation::bounded_degree_table());
    out.push_str(&computation::relation_size_table());
    out
}
