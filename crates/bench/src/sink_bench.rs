//! Streaming-sink benchmark: count-only triangle enumeration on a large
//! `G(n, p)` graph (≥ 1M edges), swept over engine thread counts.
//!
//! This is the workload the sink refactor exists for: the instances flow
//! through a [`subgraph_core::sink::CountSink`], so the run allocates no
//! per-instance storage anywhere — the measured peak RSS is the graph plus
//! the shuffle, independent of how many instances exist. The sweep writes
//! `BENCH_sink.json` at the repository root (full mode) or a scratch file
//! under `target/` (quick CI mode), records peak RSS and throughput, and
//! validates that the JSON parses; a malformed file panics, which is what
//! fails the CI smoke step.
//!
//! Two entry points share the implementation: the `sink_throughput` bench
//! target (`cargo bench -p subgraph-bench --bench sink_throughput`,
//! `-- --quick` for CI) and `cargo run -p subgraph-bench --bin reproduce --
//! sink` / `sink-quick`.

use crate::report::{fmt, Table};
use crate::shuffle::validate_json;
use std::time::Instant;
use subgraph_core::plan::{EnumerationRequest, StrategyKind};
use subgraph_graph::{generators, GraphSource};
use subgraph_mapreduce::EngineConfig;

/// Wall-clock comparison of loading the same graph from a text edge list and
/// from the binary `.sgr` container (the `load_secs` column of
/// `BENCH_sink.json`). Both files are written to scratch paths under
/// `target/` and loaded through [`GraphSource`] — exactly the CLI's path, so
/// the text side pays parsing + hygiene and the binary side pays a header
/// validation plus an `mmap`.
#[derive(Clone, Debug)]
pub struct LoadSample {
    /// Fastest text edge-list load, in seconds.
    pub text_secs: f64,
    /// Fastest binary `.sgr` load, in seconds.
    pub sgr_secs: f64,
}

impl LoadSample {
    /// How many times faster the binary load is.
    pub fn speedup(&self) -> f64 {
        if self.sgr_secs > 0.0 {
            self.text_secs / self.sgr_secs
        } else {
            f64::INFINITY
        }
    }
}

/// Thread counts the sweep measures.
pub const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// One measured thread-count configuration (count-only mode).
#[derive(Clone, Debug)]
pub struct SinkSample {
    /// Engine thread count.
    pub threads: usize,
    /// True when this configuration asks for more threads than the host's
    /// available parallelism — its timing measures contention, not scaling.
    pub oversubscribed: bool,
    /// Shuffle memory budget in bytes (0 = unbounded, the in-memory path).
    pub memory_budget: usize,
    /// Mean wall time per count-only run, in seconds.
    pub mean_secs: f64,
    /// Fastest run, in seconds.
    pub min_secs: f64,
    /// Key-value pairs shipped through the shuffle per run.
    pub shuffle_records: usize,
    /// Arena bytes spilled to disk runs per run (0 without a budget).
    pub spilled_bytes: u64,
    /// Instances counted by the sink (identical across thread counts and
    /// budgets).
    pub count: usize,
}

/// The full sweep outcome.
#[derive(Clone, Debug)]
pub struct SinkBenchReport {
    /// `"quick"` (CI smoke) or `"full"`.
    pub mode: &'static str,
    /// Nodes of the G(n, p) graph.
    pub n: usize,
    /// Edge probability.
    pub p: f64,
    /// Generator seed.
    pub seed: u64,
    /// Edges of the generated graph (≥ 1M in both modes).
    pub edges: usize,
    /// Reducer budget (the bucket-ordered join turns it into `b` buckets).
    pub reducer_budget: usize,
    /// Timed runs per thread count (after one untimed warm-up).
    pub runs: usize,
    /// `std::thread::available_parallelism` on the benchmarking host.
    pub available_parallelism: usize,
    /// Peak RSS of the process right after graph generation, in bytes
    /// (Linux `VmHWM`; `None` when the platform does not expose it). This is
    /// the baseline the sweep starts from: the graph itself.
    pub rss_after_generate_bytes: Option<u64>,
    /// Peak RSS of the whole process after the sweep (`VmHWM` is a
    /// process-lifetime high-water mark, so this includes generation).
    /// Count-only mode keeps the delta over the baseline flat in the
    /// instance count — the shuffle dominates, never the instances.
    pub peak_rss_bytes: Option<u64>,
    /// Text-vs-binary load timing for this graph (the `load_secs` column).
    pub load: LoadSample,
    /// One entry per swept thread count, in [`THREAD_COUNTS`] order.
    pub samples: Vec<SinkSample>,
}

impl SinkBenchReport {
    /// Renders the `reproduce sink` table.
    pub fn table(&self) -> String {
        let mut table = Table::new(
            "Streaming sink — count-only triangle enumeration, zero instance storage",
            &[
                "threads",
                "budget",
                "mean (s)",
                "min (s)",
                "records/s (mean)",
                "edges/s (mean)",
                "spilled (MiB)",
            ],
        );
        for sample in &self.samples {
            let per_sec = |quantity: f64| {
                if sample.mean_secs > 0.0 {
                    quantity / sample.mean_secs
                } else {
                    0.0
                }
            };
            table.row(&[
                sample.threads.to_string(),
                if sample.memory_budget == 0 {
                    "unbounded".to_string()
                } else {
                    format!("{} MiB", sample.memory_budget >> 20)
                },
                format!("{:.4}", sample.mean_secs),
                format!("{:.4}", sample.min_secs),
                fmt(per_sec(sample.shuffle_records as f64)),
                fmt(per_sec(self.edges as f64)),
                format!("{:.1}", sample.spilled_bytes as f64 / (1024.0 * 1024.0)),
            ]);
        }
        table.note(&format!(
            "{} mode: sparse G(n = {}, p = {:.2e}) seed {} -> m = {}, budget {}, {} runs per \
             point; host parallelism {}",
            self.mode,
            self.n,
            self.p,
            self.seed,
            self.edges,
            self.reducer_budget,
            self.runs,
            self.available_parallelism,
        ));
        let mib = |bytes: Option<u64>| match bytes {
            Some(b) => format!("{:.1} MiB", b as f64 / (1024.0 * 1024.0)),
            None => "unavailable".to_string(),
        };
        table.note(&format!(
            "count-only: {} instances streamed through a CountSink (not retained); peak RSS \
             after generation {}, after sweep {}",
            self.samples.first().map_or(0, |s| s.count),
            mib(self.rss_after_generate_bytes),
            mib(self.peak_rss_bytes),
        ));
        table.note(&format!(
            "load_secs: text edge-list parse {:.4}s vs binary .sgr {:.6}s ({:.0}x faster)",
            self.load.text_secs,
            self.load.sgr_secs,
            self.load.speedup(),
        ));
        table.note(&format!(
            "written to {}",
            if self.mode == "quick" {
                "target/BENCH_sink.quick.json"
            } else {
                "BENCH_sink.json"
            },
        ));
        table.render()
    }

    /// Serializes the report as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"benchmark\": \"sink_throughput\",\n");
        out.push_str(&format!("  \"mode\": \"{}\",\n", self.mode));
        out.push_str("  \"workload\": {\n");
        out.push_str("    \"graph\": \"gnp_sparse\",\n");
        out.push_str(&format!("    \"n\": {},\n", self.n));
        out.push_str(&format!("    \"p\": {:e},\n", self.p));
        out.push_str(&format!("    \"seed\": {},\n", self.seed));
        out.push_str(&format!("    \"edges\": {},\n", self.edges));
        out.push_str("    \"strategy\": \"bucket-ordered-triangles\",\n");
        out.push_str("    \"sink\": \"count\",\n");
        out.push_str(&format!(
            "    \"reducer_budget\": {}\n",
            self.reducer_budget
        ));
        out.push_str("  },\n");
        out.push_str(&format!(
            "  \"host\": {{ \"available_parallelism\": {} }},\n",
            self.available_parallelism
        ));
        let json_u64 = |bytes: Option<u64>| match bytes {
            Some(b) => b.to_string(),
            None => "null".to_string(),
        };
        out.push_str(&format!("  \"runs_per_thread_count\": {},\n", self.runs));
        out.push_str(&format!(
            "  \"rss_after_generate_bytes\": {},\n",
            json_u64(self.rss_after_generate_bytes)
        ));
        out.push_str(&format!(
            "  \"peak_rss_bytes\": {},\n",
            json_u64(self.peak_rss_bytes)
        ));
        out.push_str(&format!(
            "  \"load_secs\": {{ \"text\": {:.6}, \"sgr\": {:.6}, \"speedup\": {:.1} }},\n",
            self.load.text_secs,
            self.load.sgr_secs,
            self.load.speedup(),
        ));
        out.push_str("  \"results\": [\n");
        for (i, sample) in self.samples.iter().enumerate() {
            let records_per_sec = if sample.mean_secs > 0.0 {
                sample.shuffle_records as f64 / sample.mean_secs
            } else {
                0.0
            };
            out.push_str(&format!(
                "    {{ \"threads\": {}, \"oversubscribed\": {}, \"memory_budget\": {}, \
                 \"mean_secs\": {:.6}, \"min_secs\": {:.6}, \"shuffle_records\": {}, \
                 \"records_per_sec\": {:.1}, \"spilled_bytes\": {}, \"count\": {} }}{}\n",
                sample.threads,
                sample.oversubscribed,
                sample.memory_budget,
                sample.mean_secs,
                sample.min_secs,
                sample.shuffle_records,
                records_per_sec,
                sample.spilled_bytes,
                sample.count,
                if i + 1 == self.samples.len() { "" } else { "," },
            ));
        }
        out.push_str("  ]\n");
        out.push_str("}\n");
        out
    }
}

/// The process's peak resident set size in bytes (Linux `VmHWM`), or `None`
/// when the platform does not expose it *or* the `/proc/self/status` line is
/// malformed — an unparseable value must read as "unknown", not as a
/// silently reported 0 bytes.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    parse_vm_hwm(&status)
}

/// Extracts `VmHWM` (kB) from the text of `/proc/self/status`.
fn parse_vm_hwm(status: &str) -> Option<u64> {
    let rest = status
        .lines()
        .find_map(|line| line.strip_prefix("VmHWM:"))?;
    let kb: u64 = rest.trim().strip_suffix("kB")?.trim().parse().ok()?;
    Some(kb * 1024)
}

/// Measures text vs `.sgr` load time for `graph`: writes both encodings to
/// scratch files under `target/`, loads each a few times through
/// [`GraphSource`] (content-sniffed, like the CLI), keeps the fastest, and
/// removes the scratch files. Panics on I/O failure or on a load that does
/// not round-trip the graph's shape — a benchmark must not publish a timing
/// for a load that produced the wrong graph.
fn measure_load_times(graph: &subgraph_graph::DataGraph) -> LoadSample {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target");
    std::fs::create_dir_all(&dir).unwrap_or_else(|e| panic!("cannot create target/: {e}"));
    let text_path = dir.join("BENCH_sink.load.txt");
    let sgr_path = dir.join("BENCH_sink.load.sgr");
    subgraph_graph::io::write_edge_list_file(graph, &text_path)
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", text_path.display()));
    subgraph_graph::write_sgr_file(graph, &sgr_path)
        .unwrap_or_else(|e| panic!("cannot write {}", e));

    let time_load = |path: &std::path::Path| -> f64 {
        let source = GraphSource::file(path);
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let start = Instant::now();
            let (loaded, _) = source
                .load_with_stats()
                .unwrap_or_else(|e| panic!("cannot load {}: {e}", path.display()));
            let elapsed = start.elapsed().as_secs_f64();
            assert_eq!(loaded.num_edges(), graph.num_edges(), "{}", path.display());
            best = best.min(elapsed);
        }
        best
    };
    let text_secs = time_load(&text_path);
    let sgr_secs = time_load(&sgr_path);
    std::fs::remove_file(&text_path).ok();
    std::fs::remove_file(&sgr_path).ok();
    LoadSample {
        text_secs,
        sgr_secs,
    }
}

/// The quick (CI smoke) workload parameters `(mode, n, target_edges, runs)`,
/// shared by [`run_sink_bench`] and [`spill_gate`].
fn quick_workload() -> (&'static str, usize, usize, usize) {
    ("quick", 1_500_000, 1_050_000, 1)
}

/// Runs the sweep. Both modes use a ≥ 1M-edge graph — the point of the sink
/// path is large-graph behaviour; `quick` only trims the repetition count.
pub fn run_sink_bench(quick: bool) -> SinkBenchReport {
    let (mode, n, target_edges, runs) = if quick {
        quick_workload()
    } else {
        ("full", 3_000_000usize, 3_000_000usize, 3usize)
    };
    let p = 2.0 * target_edges as f64 / (n as f64 * (n as f64 - 1.0));
    let seed = 20_260_731u64;
    let reducer_budget = 64usize; // b = 6 for the bucket-ordered join
    let graph = generators::gnp_sparse(n, p, seed);
    assert!(
        graph.num_edges() >= 1_000_000,
        "the sink benchmark is specified for >= 1M edges, got {}",
        graph.num_edges()
    );
    // The baseline the sweep starts from: VmHWM right after generation is
    // (graph + generator scratch), before any shuffle allocation.
    let rss_after_generate_bytes = peak_rss_bytes();
    let load = measure_load_times(&graph);
    let available_parallelism = std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(1);

    let measure = |threads: usize, memory_budget: usize| -> SinkSample {
        let plan = EnumerationRequest::named("triangle", &graph)
            .expect("triangle is a catalog pattern")
            .reducers(reducer_budget)
            .strategy(StrategyKind::BucketOrderedTriangles)
            .engine(EngineConfig::with_threads(threads).memory_budget(memory_budget))
            .plan()
            .expect("bucket-ordered applies to the triangle pattern");
        let warmup = plan.count(); // untimed: page in the graph and code paths
        let mut times = Vec::with_capacity(runs);
        for _ in 0..runs {
            let start = Instant::now();
            let report = plan.count();
            times.push(start.elapsed().as_secs_f64());
            assert_eq!(report.count(), warmup.count(), "thread-count invariance");
        }
        let metrics = warmup.metrics.as_ref().expect("map-reduce strategy");
        SinkSample {
            threads,
            oversubscribed: threads > available_parallelism,
            memory_budget,
            mean_secs: times.iter().sum::<f64>() / times.len() as f64,
            min_secs: times.iter().cloned().fold(f64::INFINITY, f64::min),
            shuffle_records: metrics.shuffle_records,
            spilled_bytes: metrics.spilled_bytes,
            count: warmup.count(),
        }
    };

    let mut samples = Vec::with_capacity(THREAD_COUNTS.len() + 1);
    for threads in THREAD_COUNTS {
        samples.push(measure(threads, 0));
    }
    // One budgeted configuration: the arena runs out-of-core and the count
    // must not move by a single instance.
    let budgeted = measure(4, SPILL_GATE_BUDGET_BYTES);
    assert!(
        budgeted.spilled_bytes > 0,
        "a {} MiB budget must spill a {}-edge shuffle",
        SPILL_GATE_BUDGET_BYTES >> 20,
        graph.num_edges()
    );
    assert_eq!(
        budgeted.count, samples[0].count,
        "the spilled run must count exactly what the in-memory runs count"
    );
    samples.push(budgeted);

    SinkBenchReport {
        mode,
        n,
        p,
        seed,
        edges: graph.num_edges(),
        reducer_budget,
        runs,
        available_parallelism,
        rss_after_generate_bytes,
        peak_rss_bytes: peak_rss_bytes(),
        load,
        samples,
    }
}

/// Path of the tracked benchmark file: `BENCH_sink.json` at the repo root.
/// Only the full-mode sweep writes here.
pub fn bench_json_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_sink.json")
}

/// Scratch path the quick (CI smoke) sweep writes to, under the untracked
/// `target/` directory.
pub fn quick_json_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/BENCH_sink.quick.json")
}

/// The path [`sink_throughput`] writes for the given mode.
pub fn output_json_path(quick: bool) -> std::path::PathBuf {
    if quick {
        quick_json_path()
    } else {
        bench_json_path()
    }
}

/// Runs the sweep and writes its JSON — `BENCH_sink.json` at the repository
/// root in full mode, a scratch file under `target/` in quick mode. The
/// written file is re-read and validated, and quick mode additionally
/// validates the tracked repo-root file when present; any malformed JSON
/// panics, which is what fails the CI smoke step. Returns the rendered table.
pub fn sink_throughput(quick: bool) -> String {
    let report = run_sink_bench(quick);
    let path = output_json_path(quick);
    std::fs::write(&path, report.to_json())
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
    let written = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot re-read {}: {e}", path.display()));
    validate_json(&written).unwrap_or_else(|e| panic!("{} is malformed JSON: {e}", path.display()));
    if quick {
        let tracked = bench_json_path();
        if let Ok(contents) = std::fs::read_to_string(&tracked) {
            validate_json(&contents)
                .unwrap_or_else(|e| panic!("{} is malformed JSON: {e}", tracked.display()));
        }
    }
    report.table()
}

/// CI memory gate: peak RSS per edge of the quick sink sweep must stay
/// within this budget. The arena shuffle prices a shuffled triangle record
/// at ~13 bytes and the graph itself at 28 bytes/edge (CSR + edge list on a
/// sparse G(n, p) with n ≈ 1.4 m); the measured quick-mode total sits around
/// 110–130 bytes/edge including generator scratch and the grouping tables,
/// so 256 is a regression tripwire (the pre-arena shuffle measured ~450),
/// not a tight fit.
pub const RSS_BYTES_PER_EDGE_BUDGET: f64 = 256.0;

/// The `reproduce rss-gate` CI step: reads the quick-mode JSON that
/// `reproduce sink-quick` (or the bench target in `--quick` mode) just
/// wrote, and fails when `peak_rss_bytes / edges` exceeds
/// [`RSS_BYTES_PER_EDGE_BUDGET`]. Run it *after* `sink-quick` — a missing
/// file is an error, not a skip, so the gate cannot silently pass by
/// running first. Hosts that do not expose `VmHWM` (non-Linux) degrade to
/// an informational pass: there is no measurement to gate on.
pub fn rss_gate() -> Result<String, String> {
    let path = quick_json_path();
    let json = std::fs::read_to_string(&path).map_err(|e| {
        format!(
            "rss gate cannot read {} ({e}); run `reproduce sink-quick` first",
            path.display()
        )
    })?;
    rss_gate_verdict(&json, &path.display().to_string())
}

/// The gate's decision, separated from the file read so it is unit-testable:
/// pass/fail on `peak_rss_bytes / edges` vs the budget, informational pass
/// when the RSS is `null`.
fn rss_gate_verdict(json: &str, label: &str) -> Result<String, String> {
    let edges = extract_u64_field(json, "edges")
        .ok_or_else(|| format!("{label} has no \"edges\" field"))?;
    if edges == 0 {
        return Err(format!("{label} reports 0 edges"));
    }
    let Some(peak) = extract_u64_field(json, "peak_rss_bytes") else {
        return Ok(format!(
            "rss gate skipped: {label} has peak_rss_bytes null (platform without VmHWM)\n"
        ));
    };
    let per_edge = peak as f64 / edges as f64;
    let verdict = format!(
        "rss gate: peak_rss_bytes {peak} / {edges} edges = {per_edge:.1} bytes/edge \
         (budget {RSS_BYTES_PER_EDGE_BUDGET})\n"
    );
    if per_edge > RSS_BYTES_PER_EDGE_BUDGET {
        Err(format!(
            "{verdict}rss gate FAILED: the compact memory path regressed — \
             the arena shuffle + CSR graph fit well under the budget\n"
        ))
    } else {
        Ok(verdict)
    }
}

/// Shuffle memory budget the spill gate (and the budgeted sweep entry)
/// forces: small enough that both bench workloads spill most of their arena
/// bytes, large enough that chunk targets stay sensible.
pub const SPILL_GATE_BUDGET_BYTES: usize = 32 << 20;

/// Fixed allowance on top of `budget + graph` for everything the budget does
/// not meter: the reduce-side grouping tables (the decoded values of one
/// round, ~8 bytes per shuffled record on this workload), buffer-pool banks,
/// allocator retention and code/stack. Sized so the quick workload's
/// unbudgeted arena (~80 MiB of resident chunks) does NOT fit — if spilling
/// stops relieving the map side, the gate trips. (Measured: the budgeted
/// run peaks ~105 MiB against a ~126 MiB allowance on this workload.)
pub const SPILL_GATE_SLACK_BYTES: u64 = 64 << 20;

/// The `reproduce spill-gate` CI step: proves the memory budget actually
/// bounds the resident shuffle. Generates the quick-mode graph, records the
/// post-generation RSS baseline, runs ONE budgeted count (the first and only
/// shuffle this process has run — `VmHWM` is a lifetime high-water mark, so
/// the gate must run as its own `reproduce` invocation, never after an
/// unbudgeted sweep), and fails when the process peak exceeds
/// `baseline + budget + SPILL_GATE_SLACK_BYTES`. The budgeted count is then
/// checked against an unbudgeted run (executed *after* the peak was read).
/// Hosts without `VmHWM` degrade to an informational pass on the RSS check
/// but still verify spilling and count parity.
pub fn spill_gate() -> Result<String, String> {
    let (_, n, target_edges, _) = quick_workload();
    let p = 2.0 * target_edges as f64 / (n as f64 * (n as f64 - 1.0));
    let graph = generators::gnp_sparse(n, p, 20_260_731);
    let baseline = peak_rss_bytes();

    let count_with = |budget: usize| {
        EnumerationRequest::named("triangle", &graph)
            .expect("triangle is a catalog pattern")
            .reducers(64)
            .strategy(StrategyKind::BucketOrderedTriangles)
            .engine(EngineConfig::with_threads(4).memory_budget(budget))
            .plan()
            .expect("bucket-ordered applies to the triangle pattern")
            .count()
    };
    let budgeted = count_with(SPILL_GATE_BUDGET_BYTES);
    let peak = peak_rss_bytes();
    let spilled = budgeted.metrics.as_ref().map_or(0, |m| m.spilled_bytes);
    if spilled == 0 {
        return Err(format!(
            "spill gate FAILED: a {} MiB budget spilled nothing on a {}-edge shuffle\n",
            SPILL_GATE_BUDGET_BYTES >> 20,
            graph.num_edges()
        ));
    }
    let unbudgeted = count_with(0);
    if unbudgeted.count() != budgeted.count() {
        return Err(format!(
            "spill gate FAILED: budgeted count {} != unbudgeted count {}\n",
            budgeted.count(),
            unbudgeted.count()
        ));
    }

    let verdict = spill_gate_verdict(baseline, peak, graph.num_edges());
    verdict.map(|text| {
        format!(
            "spill gate: {} MiB budget spilled {:.1} MiB over {} runs, count {} matches the \
             in-memory run\n{text}",
            SPILL_GATE_BUDGET_BYTES >> 20,
            spilled as f64 / (1024.0 * 1024.0),
            budgeted.metrics.as_ref().map_or(0, |m| m.spill_runs),
            budgeted.count(),
        )
    })
}

/// The RSS half of the gate's decision, separated for unit tests:
/// `peak <= baseline + budget + slack`, informational pass when either
/// measurement is unavailable.
fn spill_gate_verdict(
    baseline: Option<u64>,
    peak: Option<u64>,
    edges: usize,
) -> Result<String, String> {
    let (Some(baseline), Some(peak)) = (baseline, peak) else {
        return Ok(
            "spill gate RSS check skipped: VmHWM unavailable on this platform\n".to_string(),
        );
    };
    let allowed = baseline + SPILL_GATE_BUDGET_BYTES as u64 + SPILL_GATE_SLACK_BYTES;
    let mib = |b: u64| b as f64 / (1024.0 * 1024.0);
    let arithmetic = format!(
        "peak RSS {:.1} MiB vs baseline {:.1} MiB + budget {:.1} MiB + slack {:.1} MiB = \
         {:.1} MiB allowed ({} edges)\n",
        mib(peak),
        mib(baseline),
        mib(SPILL_GATE_BUDGET_BYTES as u64),
        mib(SPILL_GATE_SLACK_BYTES),
        mib(allowed),
        edges,
    );
    if peak > allowed {
        Err(format!(
            "{arithmetic}spill gate FAILED: the resident shuffle no longer tracks the memory \
             budget\n"
        ))
    } else {
        Ok(arithmetic)
    }
}

/// Extracts the first `"key": <number>` field from JSON text. Returns `None`
/// for a missing key or a non-numeric value (e.g. `null`) — callers decide
/// whether that means "skip" or "fail".
fn extract_u64_field(json: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let rest = &json[json.find(&needle)? + needle.len()..];
    let rest = rest.trim_start();
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn micro_report() -> SinkBenchReport {
        SinkBenchReport {
            mode: "quick",
            n: 100,
            p: 1e-3,
            seed: 1,
            edges: 1_000_000,
            reducer_budget: 64,
            runs: 1,
            available_parallelism: 1,
            rss_after_generate_bytes: Some(100 * 1024 * 1024),
            peak_rss_bytes: Some(123 * 1024 * 1024),
            load: LoadSample {
                text_secs: 1.5,
                sgr_secs: 0.01,
            },
            samples: THREAD_COUNTS
                .iter()
                .map(|&threads| SinkSample {
                    threads,
                    oversubscribed: threads > 1,
                    memory_budget: if threads == 8 { 32 << 20 } else { 0 },
                    mean_secs: 1.0 / threads as f64,
                    min_secs: 0.9 / threads as f64,
                    shuffle_records: 6_000_000,
                    spilled_bytes: if threads == 8 { 48 << 20 } else { 0 },
                    count: 42,
                })
                .collect(),
        }
    }

    #[test]
    fn report_json_is_well_formed_and_table_is_honest_about_streaming() {
        let report = micro_report();
        validate_json(&report.to_json()).expect("generated JSON must validate");
        let table = report.table();
        assert!(table.contains("threads"));
        // The count-only line must say the instances were streamed, never
        // imply an empty result.
        assert!(table.contains("42 instances streamed through a CountSink"));
        assert!(table.contains("peak RSS"));
        assert!(report.to_json().contains("\"peak_rss_bytes\""));
    }

    #[test]
    fn peak_rss_is_available_on_linux() {
        let rss = peak_rss_bytes();
        if cfg!(target_os = "linux") {
            assert!(rss.unwrap_or(0) > 0, "VmHWM should be readable on Linux");
        }
    }

    #[test]
    fn vm_hwm_parsing_is_strict() {
        assert_eq!(parse_vm_hwm("VmHWM:\t  123 kB\n"), Some(123 * 1024));
        assert_eq!(
            parse_vm_hwm("VmPeak:\t9 kB\nVmHWM:\t8 kB\nVmRSS:\t7 kB\n"),
            Some(8 * 1024)
        );
        // Malformed lines must read as unknown, never as a silent 0.
        for bad in ["", "VmRSS:\t7 kB\n", "VmHWM: lots kB", "VmHWM: 12 MB"] {
            assert_eq!(parse_vm_hwm(bad), None, "{bad:?}");
        }
    }

    #[test]
    fn report_carries_the_load_secs_column() {
        let report = micro_report();
        let json = report.to_json();
        assert!(json.contains("\"load_secs\""), "{json}");
        assert!(json.contains("\"text\": 1.500000"), "{json}");
        assert!(json.contains("\"sgr\": 0.010000"), "{json}");
        assert!(json.contains("\"speedup\": 150.0"), "{json}");
        assert!(report.table().contains("load_secs"), "{}", report.table());
        assert!((report.load.speedup() - 150.0).abs() < 1e-9);
    }

    #[test]
    fn numeric_field_extraction_handles_null_and_missing() {
        let json = "{\n  \"edges\": 1050000,\n  \"peak_rss_bytes\": null\n}";
        assert_eq!(extract_u64_field(json, "edges"), Some(1_050_000));
        assert_eq!(extract_u64_field(json, "peak_rss_bytes"), None);
        assert_eq!(extract_u64_field(json, "nope"), None);
    }

    #[test]
    fn rss_gate_verdicts() {
        let json = |edges: u64, peak: &str| {
            format!("{{ \"edges\": {edges}, \"peak_rss_bytes\": {peak} }}")
        };
        // Under budget: pass, with the arithmetic in the message.
        let ok = rss_gate_verdict(&json(1_000_000, "100000000"), "t").unwrap();
        assert!(ok.contains("100.0 bytes/edge"), "{ok}");
        // Over budget: fail.
        let over = (RSS_BYTES_PER_EDGE_BUDGET as u64 + 1) * 1_000_000;
        let err = rss_gate_verdict(&json(1_000_000, &over.to_string()), "t").unwrap_err();
        assert!(err.contains("FAILED"), "{err}");
        // Null RSS: informational pass, never a silent fail.
        let skip = rss_gate_verdict(&json(1_000_000, "null"), "t").unwrap();
        assert!(skip.contains("skipped"), "{skip}");
        // Malformed: loud errors.
        assert!(rss_gate_verdict("{}", "t").is_err());
        assert!(rss_gate_verdict("{ \"edges\": 0, \"peak_rss_bytes\": 1 }", "t").is_err());
    }

    #[test]
    fn report_carries_the_budget_and_spill_columns() {
        let report = micro_report();
        let json = report.to_json();
        assert!(json.contains("\"memory_budget\": 0"), "{json}");
        assert!(
            json.contains(&format!("\"memory_budget\": {}", 32 << 20)),
            "{json}"
        );
        assert!(json.contains("\"spilled_bytes\": 0"), "{json}");
        assert!(
            json.contains(&format!("\"spilled_bytes\": {}", 48u64 << 20)),
            "{json}"
        );
        let table = report.table();
        assert!(table.contains("budget"), "{table}");
        assert!(table.contains("unbounded"), "{table}");
        assert!(table.contains("32 MiB"), "{table}");
        assert!(table.contains("spilled (MiB)"), "{table}");
        assert!(table.contains("48.0"), "{table}");
    }

    #[test]
    fn spill_gate_verdicts() {
        let base = 60u64 << 20;
        // Exactly at the allowance: pass, with the arithmetic in the message.
        let at = base + SPILL_GATE_BUDGET_BYTES as u64 + SPILL_GATE_SLACK_BYTES;
        let ok = spill_gate_verdict(Some(base), Some(at), 1_050_000).unwrap();
        assert!(ok.contains("allowed"), "{ok}");
        // One byte over: fail.
        let err = spill_gate_verdict(Some(base), Some(at + 1), 1_050_000).unwrap_err();
        assert!(err.contains("FAILED"), "{err}");
        // No VmHWM: informational pass, never a silent fail.
        let skip = spill_gate_verdict(None, None, 1_050_000).unwrap();
        assert!(skip.contains("skipped"), "{skip}");
        let skip = spill_gate_verdict(Some(base), None, 1_050_000).unwrap();
        assert!(skip.contains("skipped"), "{skip}");
    }

    #[test]
    fn missing_rss_serializes_as_null_not_zero() {
        let mut report = micro_report();
        report.peak_rss_bytes = None;
        report.rss_after_generate_bytes = None;
        let json = report.to_json();
        validate_json(&json).expect("null RSS must still validate");
        assert!(json.contains("\"peak_rss_bytes\": null"));
        assert!(json.contains("\"rss_after_generate_bytes\": null"));
        assert!(report.table().contains("unavailable"));
    }
}
