//! Shuffle throughput benchmark: triangle enumeration through the multiway
//! join on a G(n, p) graph, swept over engine thread counts.
//!
//! Every one of the repo's strategies funnels through the engine's shuffle,
//! so this is the perf trajectory of the layer the whole reproduction runs
//! on. The sweep runs the same workload at `threads ∈ {1, 2, 4, 8}`, writes
//! the timings to `BENCH_shuffle.json` at the repository root (so the numbers
//! are tracked in-tree, PR over PR; the quick CI mode writes a scratch file
//! under `target/` instead so it cannot clobber the tracked trajectory),
//! validates that the file parses as JSON, and renders a `reproduce shuffle`
//! table.
//!
//! Two entry points share the implementation: the `shuffle_throughput` bench
//! target (`cargo bench -p subgraph-bench --bench shuffle_throughput`,
//! `-- --quick` for the CI smoke mode) and
//! `cargo run -p subgraph-bench --bin reproduce -- shuffle`.

use crate::report::{fmt, Table};
use std::time::Instant;
use subgraph_core::plan::{EnumerationRequest, StrategyKind};
use subgraph_graph::generators;
use subgraph_mapreduce::EngineConfig;
use subgraph_pattern::catalog;

/// Thread counts the sweep measures.
pub const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// One measured thread-count configuration.
#[derive(Clone, Debug)]
pub struct ShuffleSample {
    /// Engine thread count.
    pub threads: usize,
    /// Mean wall time per run on the persistent worker pool, in seconds.
    pub mean_secs: f64,
    /// Fastest pooled run, in seconds.
    pub min_secs: f64,
    /// Mean wall time per run on the legacy per-round `thread::scope`
    /// executor — the baseline the pool replaced, kept as a comparison
    /// column so spawn/join overhead stays visible PR over PR.
    pub scoped_mean_secs: f64,
    /// True when this configuration asks for more threads than the host
    /// reports as available parallelism; its timing measures contention,
    /// not scaling, and the scaling gate ignores it.
    pub oversubscribed: bool,
    /// Key-value pairs shipped through the shuffle per run.
    pub shuffle_records: usize,
    /// Triangles found (sanity anchor: identical across thread counts).
    pub outputs: usize,
}

/// The full sweep outcome.
#[derive(Clone, Debug)]
pub struct ShuffleBenchReport {
    /// `"quick"` (CI smoke) or `"full"`.
    pub mode: &'static str,
    /// Nodes of the G(n, p) graph.
    pub n: usize,
    /// Edge probability of the G(n, p) graph.
    pub p: f64,
    /// Generator seed.
    pub seed: u64,
    /// Edges of the generated graph.
    pub edges: usize,
    /// Reducer budget handed to the planner (the multiway join turns it into
    /// `b = budget^{1/3}` buckets).
    pub reducer_budget: usize,
    /// Timed runs per thread count (after one untimed warm-up).
    pub runs: usize,
    /// What `std::thread::available_parallelism` reported on the benchmarking
    /// host — the context needed to read the speedup column.
    pub available_parallelism: usize,
    /// One entry per swept thread count, in [`THREAD_COUNTS`] order.
    pub samples: Vec<ShuffleSample>,
}

impl ShuffleBenchReport {
    /// End-to-end speedup of the widest configuration over single-threaded
    /// (mean over mean).
    pub fn speedup_widest_over_single(&self) -> f64 {
        match (self.samples.first(), self.samples.last()) {
            (Some(single), Some(widest)) if widest.mean_secs > 0.0 => {
                single.mean_secs / widest.mean_secs
            }
            _ => 0.0,
        }
    }

    /// Renders the `reproduce shuffle` table.
    pub fn table(&self) -> String {
        let mut table = Table::new(
            "Shuffle throughput — multiway triangle join, two-phase parallel exchange",
            &[
                "threads",
                "pool mean (s)",
                "min (s)",
                "scoped mean (s)",
                "records/s (mean)",
                "speedup vs 1",
            ],
        );
        let single_mean = self.samples.first().map(|s| s.mean_secs).unwrap_or(0.0);
        for sample in &self.samples {
            let records_per_sec = if sample.mean_secs > 0.0 {
                sample.shuffle_records as f64 / sample.mean_secs
            } else {
                0.0
            };
            let speedup = if sample.mean_secs > 0.0 {
                single_mean / sample.mean_secs
            } else {
                0.0
            };
            table.row(&[
                format!(
                    "{}{}",
                    sample.threads,
                    if sample.oversubscribed { "*" } else { "" }
                ),
                format!("{:.4}", sample.mean_secs),
                format!("{:.4}", sample.min_secs),
                format!("{:.4}", sample.scoped_mean_secs),
                fmt(records_per_sec),
                format!("{speedup:.2}x"),
            ]);
        }
        if self.samples.iter().any(|s| s.oversubscribed) {
            table.note(&format!(
                "* oversubscribed: more threads than the host's available parallelism ({})",
                self.available_parallelism,
            ));
        }
        table.note(&format!(
            "{} mode: G(n = {}, p = {}) seed {} -> m = {}, reducer budget {}, {} runs per point; \
             host parallelism {}; written to {}",
            self.mode,
            self.n,
            self.p,
            self.seed,
            self.edges,
            self.reducer_budget,
            self.runs,
            self.available_parallelism,
            if self.mode == "quick" {
                "target/BENCH_shuffle.quick.json"
            } else {
                "BENCH_shuffle.json"
            },
        ));
        table.render()
    }

    /// Serializes the report as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"benchmark\": \"shuffle_throughput\",\n");
        out.push_str(&format!("  \"mode\": \"{}\",\n", self.mode));
        out.push_str("  \"workload\": {\n");
        out.push_str("    \"graph\": \"gnp\",\n");
        out.push_str(&format!("    \"n\": {},\n", self.n));
        out.push_str(&format!("    \"p\": {},\n", self.p));
        out.push_str(&format!("    \"seed\": {},\n", self.seed));
        out.push_str(&format!("    \"edges\": {},\n", self.edges));
        out.push_str("    \"strategy\": \"multiway-triangles\",\n");
        out.push_str(&format!(
            "    \"reducer_budget\": {}\n",
            self.reducer_budget
        ));
        out.push_str("  },\n");
        out.push_str(&format!(
            "  \"host\": {{ \"available_parallelism\": {} }},\n",
            self.available_parallelism
        ));
        out.push_str(&format!("  \"runs_per_thread_count\": {},\n", self.runs));
        out.push_str("  \"results\": [\n");
        for (i, sample) in self.samples.iter().enumerate() {
            let records_per_sec = if sample.mean_secs > 0.0 {
                sample.shuffle_records as f64 / sample.mean_secs
            } else {
                0.0
            };
            out.push_str(&format!(
                "    {{ \"threads\": {}, \"mean_secs\": {:.6}, \"min_secs\": {:.6}, \
                 \"scoped_mean_secs\": {:.6}, \"oversubscribed\": {}, \
                 \"shuffle_records\": {}, \"records_per_sec\": {:.1}, \"outputs\": {} }}{}\n",
                sample.threads,
                sample.mean_secs,
                sample.min_secs,
                sample.scoped_mean_secs,
                sample.oversubscribed,
                sample.shuffle_records,
                records_per_sec,
                sample.outputs,
                if i + 1 == self.samples.len() { "" } else { "," },
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!(
            "  \"speedup_8_over_1\": {:.3}\n",
            self.speedup_widest_over_single()
        ));
        out.push_str("}\n");
        out
    }
}

/// Runs the sweep. `quick` shrinks the workload and repetition count to a CI
/// smoke test; the full mode is the tracked benchmark.
pub fn run_shuffle_bench(quick: bool) -> ShuffleBenchReport {
    // Full mode is sized so one run spends hundreds of milliseconds in the
    // engine — large enough that partition/group work, not thread spawning,
    // dominates, so the thread sweep measures the shuffle itself.
    let (mode, n, p, runs, reducer_budget) = if quick {
        ("quick", 220usize, 0.04f64, 2usize, 216usize) // b = 6
    } else {
        ("full", 2_000usize, 0.01f64, 5usize, 512usize) // b = 8
    };
    let seed = 20_260_731u64;
    let graph = generators::gnp(n, p, seed);

    let available_parallelism = std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(1);
    let mut samples = Vec::with_capacity(THREAD_COUNTS.len());
    for threads in THREAD_COUNTS {
        let run_with = |config: EngineConfig| {
            EnumerationRequest::new(catalog::triangle(), &graph)
                .reducers(reducer_budget)
                .strategy(StrategyKind::MultiwayTriangles)
                .engine(config)
                .plan()
                .expect("multiway applies to the triangle pattern")
                .execute()
        };
        let time_sweep = |config: &dyn Fn() -> EngineConfig, expected: usize| {
            let mut times = Vec::with_capacity(runs);
            for _ in 0..runs {
                let start = Instant::now();
                let report = run_with(config());
                times.push(start.elapsed().as_secs_f64());
                assert_eq!(report.count(), expected, "thread-count invariance");
            }
            times
        };
        // untimed warm-up: page in the graph and code paths
        let warmup = run_with(EngineConfig::with_threads(threads));
        let pooled = time_sweep(&|| EngineConfig::with_threads(threads), warmup.count());
        let scoped = time_sweep(
            &|| EngineConfig::with_threads(threads).scoped_threads(),
            warmup.count(),
        );
        let metrics = warmup.metrics.as_ref().expect("map-reduce strategy");
        samples.push(ShuffleSample {
            threads,
            mean_secs: pooled.iter().sum::<f64>() / pooled.len() as f64,
            min_secs: pooled.iter().cloned().fold(f64::INFINITY, f64::min),
            scoped_mean_secs: scoped.iter().sum::<f64>() / scoped.len() as f64,
            oversubscribed: threads > available_parallelism,
            shuffle_records: metrics.shuffle_records,
            outputs: warmup.count(),
        });
    }

    ShuffleBenchReport {
        mode,
        n,
        p,
        seed,
        edges: graph.num_edges(),
        reducer_budget,
        runs,
        available_parallelism,
        samples,
    }
}

/// The multi-core scaling gate behind `reproduce shuffle-gate`: runs the
/// quick sweep and *fails* (returns `Err`) when the persistent-pool engine
/// does not scale on a multi-core host — the regression this PR's tentpole
/// fixed was every multi-threaded configuration running *slower* than one
/// thread. On hosts with fewer than 4 cores the gate degrades to an
/// informational pass: there is no parallelism to measure.
pub fn shuffle_gate() -> Result<String, String> {
    let report = run_shuffle_bench(true);
    let mut out = report.table();
    if report.available_parallelism < 4 {
        out.push_str(&format!(
            "
scaling gate skipped: available parallelism {} < 4 — nothing to assert
",
            report.available_parallelism,
        ));
        return Ok(out);
    }
    // Same-speed noise allowance: a non-oversubscribed thread count may be up
    // to this factor slower than single-threaded before the gate trips.
    const TOLERANCE: f64 = 1.15;
    let speedup = report.speedup_widest_over_single();
    if speedup < 1.0 {
        return Err(format!(
            "{out}
scaling gate FAILED: speedup_8_over_1 = {speedup:.3} < 1.0              (the multi-thread slowdown is back)
"
        ));
    }
    let single_mean = report.samples.first().map(|s| s.mean_secs).unwrap_or(0.0);
    for sample in &report.samples {
        if !sample.oversubscribed && sample.mean_secs > single_mean * TOLERANCE {
            return Err(format!(
                "{out}
scaling gate FAILED: threads={} mean {:.4}s is slower than                  single-threaded {:.4}s (tolerance {:.0}%)
",
                sample.threads,
                sample.mean_secs,
                single_mean,
                (TOLERANCE - 1.0) * 100.0,
            ));
        }
    }
    out.push_str(&format!(
        "
scaling gate passed: speedup_8_over_1 = {speedup:.3}, no non-oversubscribed          thread count slower than 1 thread
"
    ));
    Ok(out)
}

/// Path of the tracked benchmark file: `BENCH_shuffle.json` at the repo root.
/// Only the full-mode sweep writes here.
pub fn bench_json_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_shuffle.json")
}

/// Scratch path the quick (CI smoke) sweep writes to, under the untracked
/// `target/` directory — so running the smoke command locally can never
/// overwrite the tracked full-mode trajectory.
pub fn quick_json_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/BENCH_shuffle.quick.json")
}

/// The path [`shuffle_throughput`] writes for the given mode.
pub fn output_json_path(quick: bool) -> std::path::PathBuf {
    if quick {
        quick_json_path()
    } else {
        bench_json_path()
    }
}

/// Runs the sweep and writes its JSON — `BENCH_shuffle.json` at the
/// repository root in full mode, a scratch file under `target/` in quick
/// mode. The written file is re-read and validated, and quick mode
/// additionally validates the tracked repo-root file when present; any
/// malformed JSON panics, which is what fails the CI smoke step. Returns the
/// rendered table.
pub fn shuffle_throughput(quick: bool) -> String {
    let report = run_shuffle_bench(quick);
    let path = output_json_path(quick);
    std::fs::write(&path, report.to_json())
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
    let written = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot re-read {}: {e}", path.display()));
    validate_json(&written).unwrap_or_else(|e| panic!("{} is malformed JSON: {e}", path.display()));
    if quick {
        let tracked = bench_json_path();
        if let Ok(contents) = std::fs::read_to_string(&tracked) {
            validate_json(&contents)
                .unwrap_or_else(|e| panic!("{} is malformed JSON: {e}", tracked.display()));
        }
    }
    report.table()
}

/// A minimal JSON well-formedness check (objects, arrays, strings, numbers,
/// booleans, null) — enough to fail CI when the benchmark writes a broken
/// file, with zero dependencies.
pub fn validate_json(text: &str) -> Result<(), String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos),
        Some(b't') => parse_literal(bytes, pos, "true"),
        Some(b'f') => parse_literal(bytes, pos, "false"),
        Some(b'n') => parse_literal(bytes, pos, "null"),
        Some(_) => parse_number(bytes, pos),
        None => Err("unexpected end of input".into()),
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // consume '{'
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(bytes, pos);
        parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}"));
        }
        *pos += 1;
        parse_value(bytes, pos)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // consume '['
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        parse_value(bytes, pos)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected '\"' at byte {pos}"));
    }
    *pos += 1;
    while let Some(&byte) = bytes.get(*pos) {
        *pos += 1;
        match byte {
            b'"' => return Ok(()),
            b'\\' => *pos += 1, // skip the escaped byte
            _ => {}
        }
    }
    Err("unterminated string".into())
}

fn parse_literal(bytes: &[u8], pos: &mut usize, literal: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(())
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut digits = 0;
    while let Some(&byte) = bytes.get(*pos) {
        if byte.is_ascii_digit() || matches!(byte, b'.' | b'e' | b'E' | b'+' | b'-') {
            digits += 1;
            *pos += 1;
        } else {
            break;
        }
    }
    if digits == 0 {
        return Err(format!("expected a number at byte {start}"));
    }
    text_is_number(&bytes[start..*pos])
}

fn text_is_number(slice: &[u8]) -> Result<(), String> {
    std::str::from_utf8(slice)
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(|_| ())
        .ok_or_else(|| format!("invalid number {:?}", String::from_utf8_lossy(slice)))
}

/// Keeps the quick workload honest: the thread counts and result shape of the
/// JSON payload are pinned by tests below without touching the tracked file.
#[cfg(test)]
mod tests {
    use super::*;

    fn micro_report() -> ShuffleBenchReport {
        ShuffleBenchReport {
            mode: "quick",
            n: 10,
            p: 0.1,
            seed: 1,
            edges: 4,
            reducer_budget: 8,
            runs: 1,
            available_parallelism: 1,
            samples: THREAD_COUNTS
                .iter()
                .map(|&threads| ShuffleSample {
                    threads,
                    mean_secs: 0.5 / threads as f64,
                    min_secs: 0.4 / threads as f64,
                    scoped_mean_secs: 0.6 / threads as f64,
                    oversubscribed: threads > 1,
                    shuffle_records: 100,
                    outputs: 3,
                })
                .collect(),
        }
    }

    #[test]
    fn report_json_is_well_formed_and_speedup_is_derived() {
        let report = micro_report();
        assert!((report.speedup_widest_over_single() - 8.0).abs() < 1e-9);
        let json = report.to_json();
        validate_json(&json).expect("generated JSON must validate");
        assert!(json.contains("\"scoped_mean_secs\""));
        assert!(json.contains("\"oversubscribed\": true"));
        let table = report.table();
        assert!(table.contains("threads"));
        assert!(table.contains("scoped mean (s)"));
        assert!(table.contains("8*"), "oversubscribed rows are starred");
    }

    #[test]
    fn oversubscription_is_derived_from_host_parallelism() {
        let report = run_shuffle_bench(true);
        for sample in &report.samples {
            assert_eq!(
                sample.oversubscribed,
                sample.threads > report.available_parallelism,
                "threads={}",
                sample.threads,
            );
        }
    }

    #[test]
    fn scaling_gate_skips_or_passes_on_this_host() {
        // On a < 4-core host the gate must degrade to an informational pass;
        // on a >= 4-core host the pooled engine must actually scale. Either
        // way `Err` means a regression.
        let verdict = shuffle_gate();
        assert!(verdict.is_ok(), "{}", verdict.unwrap_err());
    }

    #[test]
    fn validator_accepts_json_and_rejects_garbage() {
        for good in [
            "{}",
            "[]",
            "null",
            "-1.5e3",
            r#"{"a": [1, 2.0, true, "x\"y", null], "b": {"c": []}}"#,
        ] {
            validate_json(good).unwrap_or_else(|e| panic!("{good:?} rejected: {e}"));
        }
        for bad in [
            "",
            "{",
            "{\"a\" 1}",
            "[1,]",
            "{\"a\": 1} extra",
            "1.2.3",
            "nul",
        ] {
            assert!(validate_json(bad).is_err(), "{bad:?} accepted");
        }
    }

    #[test]
    fn quick_sweep_runs_and_is_thread_count_invariant() {
        let report = run_shuffle_bench(true);
        assert_eq!(report.samples.len(), THREAD_COUNTS.len());
        let outputs: Vec<usize> = report.samples.iter().map(|s| s.outputs).collect();
        assert!(outputs.windows(2).all(|w| w[0] == w[1]), "{outputs:?}");
        assert!(report.samples.iter().all(|s| s.min_secs > 0.0));
        validate_json(&report.to_json()).expect("sweep JSON must validate");
    }
}
