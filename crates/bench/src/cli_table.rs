//! CLI-driven parity check: the `reproduce cli` table.
//!
//! Drives the exact code the `subgraph` binary runs ([`subgraph_cli`]'s
//! library surface) over a generated graph and verifies, per catalog pattern,
//! that the ndjson `enumerate` line count equals the zero-allocation `count`
//! path — the CLI-level restatement of the engine's sink-parity suite.

use subgraph_cli::{count_instances, enumerate_to_writer, Format, RequestOpts};
use subgraph_pattern::catalog;

/// The generator spec the parity table runs on (small: the table sweeps
/// every catalog pattern, including the 840-CQ hypercube).
const SPEC: &str = "gnp:26,0.11,23";

/// Builds the parity table, panicking on any mismatch (so the CI smoke run
/// fails loudly rather than printing a wrong table).
pub fn cli_parity() -> String {
    let mut out = String::new();
    out.push_str("## CLI parity: `subgraph enumerate | wc -l` vs `subgraph count`\n\n");
    out.push_str(&format!("data graph: `{SPEC}`, reducer budget 16\n\n"));
    out.push_str(&format!(
        "{:<22} {:>8} {:>14} {:>8}\n",
        "pattern", "count", "ndjson lines", "parity"
    ));
    for entry in catalog::entries() {
        let opts = RequestOpts {
            source: SPEC.parse().expect("spec parses"),
            pattern: entry.name.to_string(),
            reducers: Some(16),
            threads: Some(2),
            memory_budget: None,
            spill_dir: None,
            strategy: None,
        };
        let count = count_instances(&opts)
            .unwrap_or_else(|e| panic!("count {}: {e}", entry.name))
            .0
            .count();
        let mut buf = Vec::new();
        enumerate_to_writer(&opts, Format::Ndjson, &mut buf)
            .unwrap_or_else(|e| panic!("enumerate {}: {e}", entry.name));
        let lines = buf.iter().filter(|&&b| b == b'\n').count();
        assert_eq!(
            lines, count,
            "CLI parity violated for pattern {}",
            entry.name
        );
        out.push_str(&format!(
            "{:<22} {:>8} {:>14} {:>8}\n",
            entry.name, count, lines, "ok"
        ));
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    // The full sweep is expensive (the hypercube entry alone plans over 840
    // CQ order classes), so the unit test spot-checks one pattern; the full
    // table runs as `reproduce cli` and in the CLI crate's integration suite.
    #[test]
    fn parity_holds_for_the_triangle() {
        let opts = super::RequestOpts {
            source: super::SPEC.parse().unwrap(),
            pattern: "triangle".to_string(),
            reducers: Some(16),
            threads: Some(2),
            memory_budget: None,
            spill_dir: None,
            strategy: None,
        };
        let count = super::count_instances(&opts).unwrap().0.count();
        let mut buf = Vec::new();
        super::enumerate_to_writer(&opts, super::Format::Ndjson, &mut buf).unwrap();
        assert_eq!(buf.iter().filter(|&&b| b == b'\n').count(), count);
    }
}
