//! The conjunctive-query tables: Example 3.1–3.2 (square), Figures 5–7
//! (lollipop) and the Section 5 cycle families.

use crate::report::{fmt, Table};
use subgraph_cq::{
    cqs_for_sample, cycle_cqs, cycles::conditional_upper_bound, merge_by_orientation,
    simplified_constraints, ConjunctiveQuery,
};
use subgraph_pattern::{automorphism_group, catalog};

/// Example 3.1 / 3.2 — the three CQs for the square.
pub fn square_cqs() -> String {
    let square = catalog::square();
    let autos = automorphism_group(&square);
    let cqs = cqs_for_sample(&square);
    let mut table = Table::new(
        "Example 3.2 — conjunctive queries for the square (Fig. 3)",
        &["#", "conjunctive query"],
    );
    for (i, q) in cqs.iter().enumerate() {
        table.row(&[(i + 1).to_string(), q.render()]);
    }
    table.note(&format!(
        "|Aut(square)| = {} (paper: 8); 4!/{} = {} CQs (paper: 3)",
        autos.len(),
        autos.len(),
        cqs.len()
    ));
    table.render()
}

/// Figures 5–7 — the lollipop: 12 CQs, grouped into 6 edge orientations, each
/// with the OR of its arithmetic conditions.
pub fn lollipop_cqs() -> String {
    let lollipop = catalog::lollipop();
    let cqs = cqs_for_sample(&lollipop);
    let groups = merge_by_orientation(&cqs);
    let mut table = Table::new(
        "Figures 5–7 — lollipop CQs grouped by edge orientation",
        &["orientation", "member orders", "merged constraints"],
    );
    for group in &groups {
        let constraints: Vec<String> = simplified_constraints(group)
            .iter()
            .map(|c| format!("{c:?}"))
            .collect();
        table.row(&[
            group.orientation_signature(),
            group.members.len().to_string(),
            constraints.join(" & "),
        ]);
    }
    table.note(&format!(
        "{} CQs (paper Fig. 5: 12) merge into {} orientation groups (paper Fig. 6/7: 6)",
        cqs.len(),
        groups.len()
    ));
    table.render()
}

/// Section 5 — number of CQs needed for cycles, by the general method, the
/// orientation merge, and the run-sequence method, with the conditional upper
/// bound `(2^p − 2)/(2p)`.
pub fn cycle_cq_table() -> String {
    let mut table = Table::new(
        "Section 5 — CQ counts for cycles C_p",
        &[
            "p",
            "general method (Thm 3.1)",
            "orientation merge",
            "run-sequence method (§5)",
            "conditional bound (2^p−2)/2p",
            "paper",
        ],
    );
    let paper_counts = [
        (3usize, "1"),
        (4, "3"),
        (5, "3"),
        (6, "7 (see EXPERIMENTS.md)"),
        (7, "9"),
        (8, "-"),
    ];
    for &(p, paper) in &paper_counts {
        let general = cqs_for_sample(&catalog::cycle(p));
        let merged = merge_by_orientation(&general);
        let runs = cycle_cqs(p);
        table.row(&[
            p.to_string(),
            general.len().to_string(),
            merged.len().to_string(),
            runs.len().to_string(),
            fmt(conditional_upper_bound(p)),
            paper.to_string(),
        ]);
    }
    table.note(
        "for p = 6 the paper's Example 5.5 reports 7; the orbit analysis (and the exactness \
         tests) show 8 classes are required — the 1221/2112 run sequences are not reachable \
         from 1122 by restarting or reversing the walk",
    );

    // Also show the pentagon's three queries explicitly (Example 5.3).
    let mut pentagon = Table::new(
        "Example 5.3 — the three run-sequence CQs for the pentagon",
        &["orientation", "runs", "conjunctive query"],
    );
    for cq in cycle_cqs(5) {
        pentagon.row(&[
            cq.orientation.clone(),
            format!("{:?}", cq.run_lengths),
            cq.query.render(),
        ]);
    }
    format!("{}{}", table.render(), pentagon.render())
}

/// Convenience: CQ collections for a named pattern (used by the reproduce binary).
pub fn pattern_cqs(name: &str) -> Option<Vec<ConjunctiveQuery>> {
    let pattern = match name {
        "triangle" => catalog::triangle(),
        "square" => catalog::square(),
        "lollipop" => catalog::lollipop(),
        "k4" => catalog::k4(),
        _ => return None,
    };
    Some(cqs_for_sample(&pattern))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_table_mentions_three_queries() {
        let text = square_cqs();
        assert!(text.contains("= 3 CQs"));
        assert!(text.contains("E(W,X)"));
    }

    #[test]
    fn lollipop_table_has_six_groups() {
        let text = lollipop_cqs();
        assert!(text.contains("merge into 6 orientation groups"));
    }

    #[test]
    fn cycle_table_has_all_rows() {
        let text = cycle_cq_table();
        for p in 3..=8 {
            assert!(text.contains(&format!("\n  {p} ")), "missing row for p={p}");
        }
        assert!(text.contains("udddd") || text.contains("uddd"));
    }

    #[test]
    fn pattern_lookup() {
        assert!(pattern_cqs("square").is_some());
        assert!(pattern_cqs("nonexistent").is_none());
    }
}
