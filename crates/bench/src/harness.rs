//! A minimal, dependency-free micro-benchmark harness with a
//! criterion-compatible surface (the subset the workspace benches use).
//!
//! The workspace builds offline, so the real `criterion` crate is not
//! available; this harness keeps the bench sources idiomatic (groups,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, the
//! `criterion_group!`/`criterion_main!` macros) while printing simple
//! mean/min/max timings. Swap the imports back to `criterion` if the real
//! crate is ever vendored.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a benchmark result.
pub fn black_box<T>(value: T) -> T {
    std_black_box(value)
}

/// Top-level benchmark driver (criterion-compatible shape).
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            _criterion: self,
            name,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
            sample_size: 10,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, name: &str, mut routine: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("ungrouped");
        group.bench_function(name, &mut routine);
        group.finish();
    }
}

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId {
    rendered: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            rendered: format!("{name}/{parameter}"),
        }
    }

    /// Just the parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            rendered: parameter.to_string(),
        }
    }
}

/// A group of benchmarks sharing warm-up/measurement settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the warm-up duration per benchmark.
    pub fn warm_up_time(&mut self, duration: Duration) -> &mut Self {
        self.warm_up = duration;
        self
    }

    /// Sets the measurement budget per benchmark.
    pub fn measurement_time(&mut self, duration: Duration) -> &mut Self {
        self.measurement = duration;
        self
    }

    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, name: impl std::fmt::Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        routine(&mut bencher);
        bencher.report(&self.name, &name.to_string());
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id.rendered.clone(), |bencher| routine(bencher, input))
    }

    /// Ends the group (printing is incremental, so this is a no-op).
    pub fn finish(&mut self) {}
}

/// Times one routine.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Runs `routine` repeatedly: first until the warm-up budget elapses,
    /// then `sample_size` timed samples (bounded by the measurement budget).
    pub fn iter<R, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> R,
    {
        let warm_up_start = Instant::now();
        while warm_up_start.elapsed() < self.warm_up {
            black_box(routine());
        }
        let measurement_start = Instant::now();
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
            if measurement_start.elapsed() > self.measurement {
                break;
            }
        }
    }

    fn report(&self, group: &str, name: &str) {
        if self.samples.is_empty() {
            println!("  {group}/{name}: no samples collected");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = self.samples.iter().min().unwrap();
        let max = self.samples.iter().max().unwrap();
        println!(
            "  {group}/{name}: mean {mean:?}  min {min:?}  max {max:?}  ({} samples)",
            self.samples.len()
        );
    }
}

/// Criterion-compatible group macro: defines a function running each target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::harness::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Criterion-compatible main macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples_and_reports() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("harness-test");
        group
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(20))
            .sample_size(5);
        let mut runs = 0u64;
        group.bench_function("counting", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        group.finish();
        assert!(runs > 0);
    }

    #[test]
    fn benchmark_ids_render() {
        assert_eq!(BenchmarkId::new("solver", 42).rendered, "solver/42");
        assert_eq!(BenchmarkId::from_parameter(8).rendered, "8");
    }
}
