//! Share-optimization tables: Examples 4.1–4.3, Theorem 4.2, Section 4.5 and
//! Theorem 4.4.

use crate::report::{fmt, Table};
use subgraph_core::plan::{EnumerationRequest, StrategyKind};
use subgraph_cq::cqs_for_sample;
use subgraph_graph::generators;
use subgraph_pattern::catalog;
use subgraph_shares::counting::{
    bucket_oriented_replication, generalized_partition_replication,
    partition_to_bucket_ratio_limit, useful_reducers,
};
use subgraph_shares::dominance::single_cq_expression_with_dominance;
use subgraph_shares::{optimize_shares, CostExpression};

/// Example 4.1 — optimal shares for the lollipop's identity-order CQ.
pub fn lollipop_shares() -> String {
    let cq = cqs_for_sample(&catalog::lollipop())
        .into_iter()
        .find(|q| q.subgoals() == [(0, 1), (1, 2), (1, 3), (2, 3)])
        .expect("identity-order lollipop CQ");
    let expr = single_cq_expression_with_dominance(&cq);
    let mut table = Table::new(
        "Example 4.1 — shares for the lollipop CQ E(W,X)&E(X,Y)&E(X,Z)&E(Y,Z)",
        &["reducers k", "w", "x", "y", "z", "cost/edge", "paper"],
    );
    for (k, paper) in [
        (750.0, "w=1, x=30, y=z=5, cost 65"),
        (7_500.0, "x=y²+y, z=y"),
    ] {
        let s = optimize_shares(&expr, k);
        table.row(&[
            fmt(k),
            fmt(s.shares[0]),
            fmt(s.shares[1]),
            fmt(s.shares[2]),
            fmt(s.shares[3]),
            fmt(s.cost_per_edge),
            paper.to_string(),
        ]);
    }
    table.note("W is dominated by X, so its share is fixed to 1 (the paper's dominance rule)");
    table.render()
}

/// Example 4.2 — variable-oriented shares for the square; cost 4√(2k) per edge.
pub fn square_shares() -> String {
    let cqs = cqs_for_sample(&catalog::square());
    let expr = CostExpression::from_cq_collection(&cqs);
    let mut table = Table::new(
        "Example 4.2 — variable-oriented shares for the square",
        &[
            "reducers k",
            "w",
            "x",
            "y",
            "z",
            "cost/edge",
            "paper 4√(2k)",
        ],
    );
    for k in [128.0, 512.0, 8192.0] {
        let s = optimize_shares(&expr, k);
        table.row(&[
            fmt(k),
            fmt(s.shares[0]),
            fmt(s.shares[1]),
            fmt(s.shares[2]),
            fmt(s.shares[3]),
            fmt(s.cost_per_edge),
            fmt(4.0 * (2.0 * k).sqrt()),
        ]);
    }
    table.note("the optimum is a family (x = z, y = 2w); any member attains the same cost");
    table.render()
}

/// Example 4.3 / Theorem 4.3 — the hexagon with one half-share variable.
pub fn hexagon_shares() -> String {
    let cqs = cqs_for_sample(&catalog::cycle(6));
    let expr = CostExpression::from_cq_collection(&cqs);
    let k = 500_000.0;
    let s = optimize_shares(&expr, k);
    let symmetric = subgraph_shares::two_level_shares(6, &[1, 2, 3, 4, 5], &[0], k);
    let mut table = Table::new(
        "Example 4.3 — variable-oriented shares for the hexagon C6, k = 500 000",
        &[
            "assignment",
            "X1",
            "X2",
            "X3",
            "X4",
            "X5",
            "X6",
            "cost/edge",
        ],
    );
    table.row(&[
        "solver".into(),
        fmt(s.shares[0]),
        fmt(s.shares[1]),
        fmt(s.shares[2]),
        fmt(s.shares[3]),
        fmt(s.shares[4]),
        fmt(s.shares[5]),
        fmt(s.cost_per_edge),
    ]);
    table.row(&[
        "paper (Thm 4.3)".into(),
        fmt(symmetric[0]),
        fmt(symmetric[1]),
        fmt(symmetric[2]),
        fmt(symmetric[3]),
        fmt(symmetric[4]),
        fmt(symmetric[5]),
        fmt(expr.evaluate(&symmetric)),
    ]);
    table.note(
        "paper reports total communication 5·10^13 for m = 10^9 (5·10^4 per edge); evaluating \
         its own optimum gives 6·10^4 per edge — see EXPERIMENTS.md",
    );
    table.note("for m = 10^9 edges the measured-per-edge cost scales to cost/edge × 10^9 total");
    table.render()
}

/// Theorem 4.2 — useful reducers under hash-ordered processing.
pub fn useful_reducer_table() -> String {
    let mut table = Table::new(
        "Theorem 4.2 — reducers that can receive instances (hash-ordered nodes)",
        &[
            "pattern size p",
            "buckets b",
            "all lists b^p",
            "useful C(b+p−1,p)",
            "saving factor",
        ],
    );
    for (p, b) in [(3u64, 10u64), (3, 64), (4, 10), (4, 32), (5, 10), (6, 8)] {
        let all = (b as f64).powi(p as i32);
        let useful = useful_reducers(b, p) as f64;
        table.row(&[
            p.to_string(),
            b.to_string(),
            fmt(all),
            fmt(useful),
            fmt(all / useful),
        ]);
    }
    table.note("the saving factor approaches p! for large b");
    table.render()
}

/// Section 4.5 — replication ratio of generalized Partition over the
/// bucket-oriented scheme, approaching 1 + 1/(p−1).
pub fn partition_ratio_table() -> String {
    let mut table = Table::new(
        "Section 4.5 — generalized Partition vs bucket-oriented replication per edge",
        &[
            "p",
            "b",
            "Partition",
            "bucket-oriented",
            "ratio",
            "limit 1+1/(p−1)",
        ],
    );
    for p in 3u64..=7 {
        for b in [20u64, 200, 5_000] {
            if b < p {
                continue;
            }
            let partition = generalized_partition_replication(b, p);
            let bucket = bucket_oriented_replication(b, p) as f64;
            table.row(&[
                p.to_string(),
                b.to_string(),
                fmt(partition),
                fmt(bucket),
                fmt(partition / bucket),
                fmt(partition_to_bucket_ratio_limit(p)),
            ]);
        }
    }
    table.render()
}

/// Theorem 4.4 — evaluating all CQs in one job never costs more communication
/// than separate jobs, measured on the engine.
pub fn combined_vs_separate() -> String {
    let graph = generators::gnm(300, 2_500, 44);
    let mut table = Table::new(
        "Theorem 4.4 — combined (variable-oriented) vs separate (CQ-oriented) evaluation",
        &[
            "pattern",
            "k",
            "combined kv pairs",
            "separate kv pairs",
            "ratio",
            "instances",
        ],
    );
    for (name, pattern) in [
        ("square", catalog::square()),
        ("lollipop", catalog::lollipop()),
        ("triangle", catalog::triangle()),
    ] {
        let k = 128;
        let run = |kind: StrategyKind| {
            EnumerationRequest::new(pattern.clone(), &graph)
                .reducers(k)
                .strategy(kind)
                .plan()
                .expect("strategy applies")
                .execute()
        };
        let combined = run(StrategyKind::VariableOriented);
        let separate = run(StrategyKind::CqOriented);
        assert_eq!(combined.count(), separate.count());
        table.row(&[
            name.to_string(),
            k.to_string(),
            combined.communication().to_string(),
            separate.communication().to_string(),
            fmt(separate.communication() as f64 / combined.communication() as f64),
            combined.count().to_string(),
        ]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lollipop_table_contains_the_example_values() {
        let text = lollipop_shares();
        assert!(text.contains("750"));
        assert!(text.contains("65"));
    }

    #[test]
    fn square_table_matches_the_formula_column() {
        let text = square_shares();
        assert!(text.contains("4√(2k)") || text.contains("paper"));
    }

    #[test]
    fn hexagon_table_has_both_assignments() {
        let text = hexagon_shares();
        assert!(text.contains("solver"));
        assert!(text.contains("Thm 4.3"));
    }

    #[test]
    fn counting_tables_render() {
        assert!(useful_reducer_table().contains("saving factor"));
        assert!(partition_ratio_table().contains("limit"));
    }
}
