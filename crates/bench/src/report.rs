//! Small plain-text table formatter used by every reproduction module.

/// A plain-text table with a title, column headers and string cells.
#[derive(Clone, Debug, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Table {
    /// Creates a table with a title (e.g. `"Figure 1 — asymptotic comparison"`).
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends one row; the cell count must match the header count.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Appends a free-text note shown under the table.
    pub fn note(&mut self, text: &str) -> &mut Self {
        self.notes.push(text.to_string());
        self
    }

    /// Renders the table as aligned plain text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("\n== {} ==\n", self.title));
        let header_line: Vec<String> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| format!("{:width$}", h, width = widths[i]))
            .collect();
        out.push_str(&format!("  {}\n", header_line.join("  ")));
        let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&format!("  {}\n", rule.join("  ")));
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, cell)| format!("{:width$}", cell, width = widths[i]))
                .collect();
            out.push_str(&format!("  {}\n", line.join("  ")));
        }
        for note in &self.notes {
            out.push_str(&format!("  note: {note}\n"));
        }
        out
    }
}

/// Formats a float with a sensible number of digits for table cells.
pub fn fmt(value: f64) -> String {
    if value == 0.0 {
        "0".to_string()
    } else if value.fract().abs() < 1e-9 && value.abs() < 1e15 {
        format!("{}", value.round() as i64)
    } else if value.abs() >= 1000.0 || value.abs() < 0.01 {
        format!("{value:.3e}")
    } else {
        format!("{value:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table_with_notes() {
        let mut t = Table::new("demo", &["a", "metric"]);
        t.row(&["x".into(), "1".into()]);
        t.row(&["longer".into(), "2.5".into()]);
        t.note("a note");
        let text = t.render();
        assert!(text.contains("== demo =="));
        assert!(text.contains("longer"));
        assert!(text.contains("note: a note"));
    }

    #[test]
    #[should_panic]
    fn row_width_mismatch_panics() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(&["only one".into()]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(3.0), "3");
        assert_eq!(fmt(13.75), "13.750");
        assert_eq!(fmt(60000.0), "60000");
        assert_eq!(
            fmt(5e13),
            "5e13".to_string().replace("e13", "0000000000000")
        );
    }
}
