//! Figures 1 and 2: the three single-round triangle algorithms.

use crate::report::{fmt, Table};
use subgraph_core::triangles::{
    bucket_ordered_triangles, cascade_triangles, multiway_triangles, partition_triangles,
};
use subgraph_graph::generators;
use subgraph_mapreduce::EngineConfig;
use subgraph_shares::counting::{
    multiway_triangle_replication, ordered_triangle_replication, partition_triangle_replication,
};

/// The synthetic data graph used for the measured columns of Figures 1 and 2.
pub fn figure_graph() -> subgraph_graph::DataGraph {
    generators::gnm(1_200, 12_000, 20_130_415)
}

/// Figure 1 — asymptotic comparison of the three algorithms at (approximately)
/// equal reducer counts `k`, plus measured replication on a synthetic graph.
pub fn figure1() -> String {
    let config = EngineConfig::default();
    let graph = figure_graph();
    let k = 220.0f64; // reducer budget used to derive b per algorithm
    let b_partition = (6.0 * k).cbrt().round() as usize; // b = (6k)^{1/3}
    let b_multiway = k.cbrt().round() as usize; // b = k^{1/3}
    let b_ordered = (6.0 * k).cbrt().round() as usize; // b = (6k)^{1/3}

    let mut table = Table::new(
        "Figure 1 — asymptotic communication cost of triangle algorithms (k reducers)",
        &[
            "algorithm",
            "buckets b",
            "formula (per edge)",
            "formula value",
            "measured (per edge)",
        ],
    );
    let partition_run = partition_triangles(&graph, b_partition, &config);
    table.row(&[
        "Partition [19]".into(),
        format!("(6k)^1/3 = {b_partition}"),
        "3·(6k)^1/3 / 2  (≈ 3b/2)".into(),
        fmt(partition_triangle_replication(b_partition as u64)),
        fmt(partition_run.metrics.replication_per_input()),
    ]);
    let multiway_run = multiway_triangles(&graph, b_multiway, &config);
    table.row(&[
        "Section 2.2 multiway join".into(),
        format!("k^1/3 = {b_multiway}"),
        "3·k^1/3  (3b−2 dedup.)".into(),
        fmt(multiway_triangle_replication(b_multiway as u64)),
        fmt(multiway_run.metrics.replication_per_input()),
    ]);
    let ordered_run = bucket_ordered_triangles(&graph, b_ordered, &config);
    table.row(&[
        "Section 2.3 bucket-ordered".into(),
        format!("(6k)^1/3 = {b_ordered}"),
        "(6k)^1/3  (= b)".into(),
        fmt(ordered_triangle_replication(b_ordered as u64)),
        fmt(ordered_run.metrics.replication_per_input()),
    ]);
    table.note(&format!(
        "data graph: n = {}, m = {}; all three algorithms found {} triangles",
        graph.num_nodes(),
        graph.num_edges(),
        ordered_run.count()
    ));
    table.note(
        "the measured multiway-join column is 3b because real mappers ship all 3b pairs \
         (paper footnote 1); the formula column shows the paper's 3b−2",
    );
    assert_eq!(partition_run.count(), ordered_run.count());
    assert_eq!(multiway_run.count(), ordered_run.count());
    table.render()
}

/// Figure 2 — the same comparison at the paper's specific bucket counts
/// (Partition b = 12, Section 2.2 b = 6, Section 2.3 b = 10).
pub fn figure2() -> String {
    let config = EngineConfig::default();
    let graph = figure_graph();
    let mut table = Table::new(
        "Figure 2 — comparison at specific reducer counts",
        &[
            "algorithm",
            "buckets b",
            "reducers (max)",
            "reducers used",
            "paper cost/edge",
            "measured cost/edge",
        ],
    );
    let partition_run = partition_triangles(&graph, 12, &config);
    table.row(&[
        "Partition [19]".into(),
        "12".into(),
        "C(12,3) = 220".into(),
        partition_run.metrics.reducers_used.to_string(),
        "13.75".into(),
        fmt(partition_run.metrics.replication_per_input()),
    ]);
    let multiway_run = multiway_triangles(&graph, 6, &config);
    table.row(&[
        "Section 2.2 multiway join".into(),
        "6".into(),
        "6³ = 216".into(),
        multiway_run.metrics.reducers_used.to_string(),
        "16".into(),
        fmt(multiway_run.metrics.replication_per_input()),
    ]);
    let ordered_run = bucket_ordered_triangles(&graph, 10, &config);
    table.row(&[
        "Section 2.3 bucket-ordered".into(),
        "10".into(),
        "C(12,3) = 220".into(),
        ordered_run.metrics.reducers_used.to_string(),
        "10".into(),
        fmt(ordered_run.metrics.replication_per_input()),
    ]);
    table.note(&format!(
        "triangles found by all three algorithms: {}",
        ordered_run.count()
    ));
    table.note(&format!(
        "total reducer work (candidate pairs): Partition {}, multiway {}, ordered {}; serial baseline {}",
        partition_run.metrics.reducer_work,
        multiway_run.metrics.reducer_work,
        ordered_run.metrics.reducer_work,
        subgraph_core::serial::enumerate_triangles_serial(&graph).work
    ));
    table.render()
}

/// Section 2 motivation — one round of multiway join versus the conventional
/// two-round cascade of two-way joins, on a skewed (power-law) graph where the
/// intermediate wedge count explodes.
pub fn cascade_comparison() -> String {
    let config = EngineConfig::default();
    let graph = generators::power_law(2_000, 12_000, 2.2, 20_130_416);
    let mut table = Table::new(
        "Section 2 motivation — single-round multiway join vs two-round cascade",
        &["algorithm", "rounds", "kv pairs shipped", "per edge", "triangles"],
    );
    let cascade = cascade_triangles(&graph, &config);
    let ordered = bucket_ordered_triangles(&graph, 8, &config);
    assert_eq!(cascade.count(), ordered.count());
    table.row(&[
        "cascade of 2-way joins".into(),
        "2".into(),
        cascade.metrics.key_value_pairs.to_string(),
        fmt(cascade.metrics.key_value_pairs as f64 / graph.num_edges() as f64),
        cascade.count().to_string(),
    ]);
    table.row(&[
        "bucket-ordered multiway (b=8)".into(),
        "1".into(),
        ordered.metrics.key_value_pairs.to_string(),
        fmt(ordered.metrics.replication_per_input()),
        ordered.count().to_string(),
    ]);
    table.note(&format!(
        "power-law data graph: n = {}, m = {}, max degree {}",
        graph.num_nodes(),
        graph.num_edges(),
        graph.max_degree()
    ));
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_reports_the_ordered_algorithm_as_cheapest() {
        let text = figure1();
        assert!(text.contains("Partition"));
        assert!(text.contains("bucket-ordered"));
    }

    #[test]
    fn figure2_contains_the_paper_constants() {
        let text = figure2();
        assert!(text.contains("13.75"));
        assert!(text.contains("16"));
        assert!(text.contains("C(12,3) = 220"));
    }
}
