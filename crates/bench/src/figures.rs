//! Figures 1 and 2: the three single-round triangle algorithms, driven
//! through the planner's strategy overrides.

use crate::report::{fmt, Table};
use subgraph_core::plan::{EnumerationRequest, RunReport, StrategyKind};
use subgraph_graph::{generators, DataGraph};
use subgraph_mapreduce::EngineConfig;
use subgraph_pattern::catalog;
use subgraph_shares::counting::{
    binomial, multiway_triangle_replication, ordered_triangle_replication,
    partition_triangle_replication, useful_reducers,
};

/// The synthetic data graph used for the measured columns of Figures 1 and 2.
pub fn figure_graph() -> DataGraph {
    generators::gnm(1_200, 12_000, 20_130_415)
}

/// Runs one triangle strategy at the reducer budget that makes the planner
/// pick exactly the wanted bucket count.
fn run_triangles(graph: &DataGraph, kind: StrategyKind, budget: usize) -> RunReport {
    EnumerationRequest::new(catalog::triangle(), graph)
        .reducers(budget)
        .strategy(kind)
        .plan()
        .expect("triangle strategies apply to the triangle pattern")
        .execute()
}

/// Figure 1 — asymptotic comparison of the three algorithms at (approximately)
/// equal reducer counts `k`, plus measured replication on a synthetic graph.
pub fn figure1() -> String {
    let graph = figure_graph();
    let k = 220.0f64; // reducer budget used to derive b per algorithm
    let b_partition = (6.0 * k).cbrt().round() as usize; // b = (6k)^{1/3}
    let b_multiway = k.cbrt().round() as usize; // b = k^{1/3}
    let b_ordered = (6.0 * k).cbrt().round() as usize; // b = (6k)^{1/3}

    let mut table = Table::new(
        "Figure 1 — asymptotic communication cost of triangle algorithms (k reducers)",
        &[
            "algorithm",
            "buckets b",
            "formula (per edge)",
            "formula value",
            "measured (per edge)",
        ],
    );
    // Budgets chosen so the planner's bucket selection lands exactly on b.
    let partition_run = run_triangles(
        &graph,
        StrategyKind::PartitionTriangles,
        binomial(b_partition as u64, 3) as usize,
    );
    let partition_metrics = partition_run.metrics.as_ref().unwrap();
    table.row(&[
        "Partition [19]".into(),
        format!("(6k)^1/3 = {b_partition}"),
        "3·(6k)^1/3 / 2  (≈ 3b/2)".into(),
        fmt(partition_triangle_replication(b_partition as u64)),
        fmt(partition_metrics.shuffled_per_input()),
    ]);
    let multiway_run = run_triangles(&graph, StrategyKind::MultiwayTriangles, b_multiway.pow(3));
    let multiway_metrics = multiway_run.metrics.as_ref().unwrap();
    table.row(&[
        "Section 2.2 multiway join".into(),
        format!("k^1/3 = {b_multiway}"),
        "3·k^1/3 − 2  (= 3b−2)".into(),
        fmt(multiway_triangle_replication(b_multiway as u64)),
        fmt(multiway_metrics.shuffled_per_input()),
    ]);
    let ordered_run = run_triangles(
        &graph,
        StrategyKind::BucketOrderedTriangles,
        useful_reducers(b_ordered as u64, 3) as usize,
    );
    let ordered_metrics = ordered_run.metrics.as_ref().unwrap();
    table.row(&[
        "Section 2.3 bucket-ordered".into(),
        format!("(6k)^1/3 = {b_ordered}"),
        "(6k)^1/3  (= b)".into(),
        fmt(ordered_triangle_replication(b_ordered as u64)),
        fmt(ordered_metrics.shuffled_per_input()),
    ]);
    table.note(&format!(
        "data graph: n = {}, m = {}; all three algorithms found {} triangles",
        graph.num_nodes(),
        graph.num_edges(),
        ordered_run.count()
    ));
    table.note(
        "the multiway mappers emit the naive 3b pairs per edge (paper footnote 1); the \
         map-side combiner merges the two coinciding roles, so the measured shipped count \
         matches the paper's 3b−2 exactly (see the `combiner` reproduction)",
    );
    assert_eq!(partition_run.count(), ordered_run.count());
    assert_eq!(multiway_run.count(), ordered_run.count());
    table.render()
}

/// Figure 2 — the same comparison at the paper's specific bucket counts
/// (Partition b = 12, Section 2.2 b = 6, Section 2.3 b = 10).
pub fn figure2() -> String {
    let graph = figure_graph();
    let mut table = Table::new(
        "Figure 2 — comparison at specific reducer counts",
        &[
            "algorithm",
            "buckets b",
            "reducers (max)",
            "reducers used",
            "paper cost/edge",
            "measured cost/edge",
        ],
    );
    let partition_run = run_triangles(&graph, StrategyKind::PartitionTriangles, 220);
    let partition_metrics = partition_run.metrics.as_ref().unwrap();
    table.row(&[
        "Partition [19]".into(),
        "12".into(),
        "C(12,3) = 220".into(),
        partition_metrics.reducers_used.to_string(),
        "13.75".into(),
        fmt(partition_metrics.shuffled_per_input()),
    ]);
    let multiway_run = run_triangles(&graph, StrategyKind::MultiwayTriangles, 216);
    let multiway_metrics = multiway_run.metrics.as_ref().unwrap();
    table.row(&[
        "Section 2.2 multiway join".into(),
        "6".into(),
        "6³ = 216".into(),
        multiway_metrics.reducers_used.to_string(),
        "16".into(),
        fmt(multiway_metrics.shuffled_per_input()),
    ]);
    let ordered_run = run_triangles(&graph, StrategyKind::BucketOrderedTriangles, 220);
    let ordered_metrics = ordered_run.metrics.as_ref().unwrap();
    table.row(&[
        "Section 2.3 bucket-ordered".into(),
        "10".into(),
        "C(12,3) = 220".into(),
        ordered_metrics.reducers_used.to_string(),
        "10".into(),
        fmt(ordered_metrics.shuffled_per_input()),
    ]);
    table.note(&format!(
        "triangles found by all three algorithms: {}",
        ordered_run.count()
    ));
    table.note(
        "the multiway measured column matches the paper's 3b−2 = 16 because the map-side \
         combiner merges coinciding role emissions before the shuffle",
    );
    table.note(&format!(
        "total reducer work (candidate pairs): Partition {}, multiway {}, ordered {}; serial baseline {}",
        partition_run.work,
        multiway_run.work,
        ordered_run.work,
        subgraph_core::serial::enumerate_triangles_serial(&graph).work
    ));
    table.render()
}

/// Section 2 motivation — one round of multiway join versus the conventional
/// two-round cascade of two-way joins, on a skewed (power-law) graph where the
/// intermediate wedge count explodes.
pub fn cascade_comparison() -> String {
    let graph = generators::power_law(2_000, 12_000, 2.2, 20_130_416);
    let cascade = run_triangles(&graph, StrategyKind::CascadeTriangles, 220);
    let ordered = run_triangles(
        &graph,
        StrategyKind::BucketOrderedTriangles,
        useful_reducers(8, 3) as usize,
    );
    assert_eq!(cascade.count(), ordered.count());
    let mut table = Table::new(
        "Section 2 motivation — single-round multiway join vs two-round cascade",
        &[
            "algorithm",
            "rounds",
            "kv pairs shipped",
            "per edge",
            "triangles",
        ],
    );
    table.row(&[
        "cascade of 2-way joins".into(),
        cascade.rounds.to_string(),
        cascade.communication().to_string(),
        fmt(cascade.communication() as f64 / graph.num_edges() as f64),
        cascade.count().to_string(),
    ]);
    table.row(&[
        "bucket-ordered multiway (b=8)".into(),
        ordered.rounds.to_string(),
        ordered.communication().to_string(),
        fmt(ordered.metrics.as_ref().unwrap().replication_per_input()),
        ordered.count().to_string(),
    ]);
    table.note(&format!(
        "power-law data graph: n = {}, m = {}, max degree {}",
        graph.num_nodes(),
        graph.num_edges(),
        graph.max_degree()
    ));
    // The cascade is a true two-round pipeline now: show where the pairs go.
    for round in &cascade.round_metrics {
        table.note(&format!(
            "cascade round {:?}: {} inputs, {} kv pairs shipped ({} bytes), {} outputs",
            round.name,
            round.metrics.input_records,
            round.metrics.shuffle_records,
            round.metrics.shuffle_bytes,
            round.metrics.outputs,
        ));
    }
    table.render()
}

/// Map-side combiner effect — the multiway join with the role-merging
/// combiner enabled (paper's `3b − 2` per edge) versus disabled (footnote 1's
/// naive `3b`), with byte accounting. Outputs are identical by construction;
/// the table asserts it.
pub fn combiner_table() -> String {
    let graph = figure_graph();
    let b = 6usize;
    let run = |combiners: bool| {
        EnumerationRequest::new(catalog::triangle(), &graph)
            .reducers(b.pow(3))
            .strategy(StrategyKind::MultiwayTriangles)
            .engine(EngineConfig::default().combiners(combiners))
            .plan()
            .expect("multiway applies to triangles")
            .execute()
    };
    let with = run(true);
    let without = run(false);
    assert_eq!(with.instances(), without.instances());
    let mut table = Table::new(
        "Map-side combiner — multiway join, emitted vs shipped (b = 6)",
        &[
            "combiner",
            "kv pairs emitted",
            "kv pairs shipped",
            "shipped/edge",
            "shuffle bytes",
            "triangles",
        ],
    );
    for (label, report) in [("on", &with), ("off", &without)] {
        let metrics = report.metrics.as_ref().unwrap();
        table.row(&[
            label.into(),
            metrics.key_value_pairs.to_string(),
            metrics.shuffle_records.to_string(),
            fmt(metrics.shuffled_per_input()),
            metrics.shuffle_bytes.to_string(),
            report.count().to_string(),
        ]);
    }
    table.note(&format!(
        "combiner savings: {:.1}% of emitted pairs merged away (3b − 2 = {} of 3b = {} per edge)",
        with.metrics.as_ref().unwrap().combiner_savings() * 100.0,
        3 * b - 2,
        3 * b
    ));
    table.note("both runs return byte-identical triangle sets (asserted)");
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_reports_the_ordered_algorithm_as_cheapest() {
        let text = figure1();
        assert!(text.contains("Partition"));
        assert!(text.contains("bucket-ordered"));
    }

    #[test]
    fn figure2_contains_the_paper_constants() {
        let text = figure2();
        assert!(text.contains("13.75"));
        assert!(text.contains("16"));
        assert!(text.contains("C(12,3) = 220"));
    }

    /// The sink-refactor acceptance check for the reproductions: running the
    /// Figure 1/2 strategies in count-only mode (CountSink, no instance
    /// storage) yields byte-identical counts, shuffle records and shuffle
    /// bytes to the collect path the figures measure.
    #[test]
    fn count_mode_matches_the_figure_counts_and_counters() {
        let graph = figure_graph();
        for (kind, budget) in [
            (StrategyKind::PartitionTriangles, 220),
            (StrategyKind::MultiwayTriangles, 216),
            (StrategyKind::BucketOrderedTriangles, 220),
        ] {
            let plan = EnumerationRequest::new(catalog::triangle(), &graph)
                .reducers(budget)
                .strategy(kind)
                .plan()
                .expect("triangle strategies apply");
            let collected = plan.execute();
            let counted = plan.count();
            assert!(counted.is_streamed());
            assert_eq!(counted.count(), collected.count(), "{kind}");
            let counted_metrics = counted.metrics.as_ref().unwrap();
            let collected_metrics = collected.metrics.as_ref().unwrap();
            assert_eq!(
                counted_metrics.key_value_pairs, collected_metrics.key_value_pairs,
                "{kind}"
            );
            assert_eq!(
                counted_metrics.shuffle_records, collected_metrics.shuffle_records,
                "{kind}"
            );
            assert_eq!(
                counted_metrics.shuffle_bytes, collected_metrics.shuffle_bytes,
                "{kind}"
            );
            assert_eq!(
                counted_metrics.reducer_work, collected_metrics.reducer_work,
                "{kind}"
            );
            // Honest rendering: a count-only run never reads as "0 instances".
            assert!(counted
                .describe_output()
                .contains(&format!("{} instances streamed", collected.count())));
        }
    }

    #[test]
    fn combiner_table_shows_the_discount() {
        let text = combiner_table();
        assert!(text.contains("combiner"));
        assert!(text.contains("on"));
        assert!(text.contains("off"));
        assert!(text.contains("3b − 2 = 16"));
    }
}
