//! Regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p subgraph-bench --bin reproduce -- all
//! cargo run --release -p subgraph-bench --bin reproduce -- fig2 shares-hexagon
//! ```
//!
//! Run with no arguments to list the available reproductions.

use subgraph_bench::{cli_table, computation, cq_tables, figures, planner_table, share_tables};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "help") {
        print_usage();
        return;
    }
    for arg in &args {
        match arg.as_str() {
            "all" => print!("{}", subgraph_bench::run_all()),
            "planner" => print!("{}", planner_table::planner_choices()),
            "plan-times" => {
                let report = planner_table::plan_timing();
                let path = planner_table::bench_json_path();
                std::fs::write(&path, report.to_json())
                    .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
                print!("{}", report.table());
            }
            "plan-gate" => match planner_table::plan_gate() {
                Ok(table) => print!("{table}"),
                Err(report) => {
                    eprint!("{report}");
                    std::process::exit(1);
                }
            },
            "shuffle" => print!("{}", subgraph_bench::shuffle::shuffle_throughput(false)),
            "shuffle-quick" => print!("{}", subgraph_bench::shuffle::shuffle_throughput(true)),
            "shuffle-gate" => match subgraph_bench::shuffle::shuffle_gate() {
                Ok(table) => print!("{table}"),
                Err(report) => {
                    eprint!("{report}");
                    std::process::exit(1);
                }
            },
            "sink" => print!("{}", subgraph_bench::sink_bench::sink_throughput(false)),
            "sink-quick" => print!("{}", subgraph_bench::sink_bench::sink_throughput(true)),
            "rss-gate" => match subgraph_bench::sink_bench::rss_gate() {
                Ok(report) => print!("{report}"),
                Err(report) => {
                    eprint!("{report}");
                    std::process::exit(1);
                }
            },
            "spill-gate" => match subgraph_bench::sink_bench::spill_gate() {
                Ok(report) => print!("{report}"),
                Err(report) => {
                    eprint!("{report}");
                    std::process::exit(1);
                }
            },
            "serve" => print!("{}", subgraph_bench::serve_bench::serve_amortization(false)),
            "serve-quick" => print!("{}", subgraph_bench::serve_bench::serve_amortization(true)),
            "cli" => print!("{}", cli_table::cli_parity()),
            "fig1" => print!("{}", figures::figure1()),
            "fig2" => print!("{}", figures::figure2()),
            "cascade" => print!("{}", figures::cascade_comparison()),
            "combiner" => print!("{}", figures::combiner_table()),
            "square-cqs" => print!("{}", cq_tables::square_cqs()),
            "lollipop-cqs" => print!("{}", cq_tables::lollipop_cqs()),
            "cycle-cqs" => print!("{}", cq_tables::cycle_cq_table()),
            "shares-lollipop" => print!("{}", share_tables::lollipop_shares()),
            "shares-square" => print!("{}", share_tables::square_shares()),
            "shares-hexagon" => print!("{}", share_tables::hexagon_shares()),
            "useful-reducers" => print!("{}", share_tables::useful_reducer_table()),
            "partition-ratio" => print!("{}", share_tables::partition_ratio_table()),
            "combined-vs-separate" => print!("{}", share_tables::combined_vs_separate()),
            "convertibility" => print!("{}", computation::convertibility_table()),
            "odd-cycle" => print!("{}", computation::odd_cycle_table()),
            "decompose" => print!("{}", computation::decomposition_table()),
            "bounded-degree" => print!("{}", computation::bounded_degree_table()),
            "relation-sizes" => print!("{}", computation::relation_size_table()),
            other => {
                eprintln!("unknown reproduction {other:?}\n");
                print_usage();
                std::process::exit(1);
            }
        }
    }
}

fn print_usage() {
    eprintln!(
        "usage: reproduce <target> [<target> ...]\n\
         targets:\n  \
         all                   every table and figure\n  \
         planner               strategy chosen per pattern and reducer budget\n  \
         plan-times            plan-time sweep: branch-and-bound vs exhaustive order-class \
         search per catalog pattern (writes BENCH_planner.json)\n  \
         plan-gate             the same sweep as a CI gate: hypercube3 must plan within \
         50 ms (release) and both search modes must agree (exits 1 on regression)\n  \
         shuffle               engine shuffle throughput sweep (writes BENCH_shuffle.json)\n  \
         shuffle-quick         the same sweep in CI smoke mode\n  \
         shuffle-gate          quick sweep + multi-core scaling assertion (CI gate; \
         exits 1 on regression)\n  \
         sink                  streaming-sink sweep: count-only >=1M-edge graph (writes BENCH_sink.json)\n  \
         sink-quick            the same sweep in CI smoke mode\n  \
         rss-gate              bytes-per-edge budget on the sink-quick peak RSS (CI gate; \
         exits 1 on regression)\n  \
         spill-gate            out-of-core shuffle gate: budgeted count within budget + graph + \
         slack, identical answer (CI gate; exits 1 on regression)\n  \
         serve                 serve amortization: warm cached queries vs one-shot (writes BENCH_serve.json)\n  \
         serve-quick           the same comparison in CI smoke mode\n  \
         cli                   CLI parity: enumerate line count vs count per catalog pattern\n  \
         fig1                  Figure 1  (asymptotic triangle comparison)\n  \
         fig2                  Figure 2  (specific reducer counts)\n  \
         cascade               Section 2 motivation (1-round vs 2-round cascade)\n  \
         combiner              Section 2.2 multiway join: combiner on vs off\n  \
         square-cqs            Example 3.2 / Figure 3\n  \
         lollipop-cqs          Figures 5-7\n  \
         cycle-cqs             Section 5 / Examples 5.3-5.5\n  \
         shares-lollipop       Example 4.1\n  \
         shares-square         Example 4.2\n  \
         shares-hexagon        Example 4.3 / Theorem 4.3\n  \
         useful-reducers       Theorem 4.2\n  \
         partition-ratio       Section 4.5\n  \
         combined-vs-separate  Theorem 4.4 (measured)\n  \
         convertibility        Theorem 6.1 / Example 6.1 (measured)\n  \
         odd-cycle             Algorithm 1 / Theorem 7.1\n  \
         decompose             Theorem 7.2\n  \
         bounded-degree        Theorem 7.3\n  \
         relation-sizes        Section 7.4"
    );
}
