//! Serve amortization benchmark: warm cached count queries against a running
//! server vs the one-shot `subgraph count` path, on the same edge-list file.
//!
//! The server exists to amortize the per-query fixed costs — reading and
//! indexing the graph, computing its statistics and node orders, and running
//! the planner's cost model — across a query stream. This bench pins that
//! win: every one-shot run pays process startup (the comparison invokes the
//! actual `subgraph` binary when it sits next to this bench binary, falling
//! back to the in-process library path otherwise) + file parse + index +
//! plan + execute, while every warm served query pays HTTP round-trip +
//! cached-plan resume + execute only. Both paths run the identical serial
//! plan (reducer budget 1), the regime a long-lived service targets:
//! interactive queries over a loaded snapshot, where execution is
//! milliseconds and the fixed costs dominate the one-shot path.
//!
//! Writes `BENCH_serve.json` at the repository root (full mode) or a scratch
//! file under `target/` (quick CI mode); the written file is re-read and
//! validated, and a malformed file panics, which fails the CI smoke step.
//!
//! Entry points: `cargo run -p subgraph-bench --bin reproduce -- serve` /
//! `serve-quick`.

use crate::report::Table;
use crate::shuffle::validate_json;
use std::time::Instant;
use subgraph_cli::{count_instances, RequestOpts};
use subgraph_graph::{generators, GraphSource};
use subgraph_serve::{client, spawn, GraphStore, QueryEngine, ServerConfig};

/// Latency summary over one timed loop.
#[derive(Clone, Debug)]
pub struct LatencySample {
    /// Timed runs (after one untimed warm-up).
    pub runs: usize,
    /// Mean per-query wall time, seconds.
    pub mean_secs: f64,
    /// Fastest query, seconds.
    pub min_secs: f64,
}

impl LatencySample {
    fn from_times(times: &[f64]) -> Self {
        LatencySample {
            runs: times.len(),
            mean_secs: times.iter().sum::<f64>() / times.len() as f64,
            min_secs: times.iter().cloned().fold(f64::INFINITY, f64::min),
        }
    }
}

/// The full comparison outcome.
#[derive(Clone, Debug)]
pub struct ServeBenchReport {
    /// `"quick"` (CI smoke) or `"full"`.
    pub mode: &'static str,
    /// Nodes of the G(n, m) input graph.
    pub n: usize,
    /// Edges of the input graph.
    pub m: usize,
    /// Generator seed.
    pub seed: u64,
    /// The triangle count both paths must agree on.
    pub count: usize,
    /// Per-query engine threads (pinned identically on both paths).
    pub threads: usize,
    /// How the one-shot side ran: `"cli-process"` (the real `subgraph`
    /// binary, including process startup) or `"in-process"` (library call).
    pub one_shot_mode: &'static str,
    /// One-shot path: startup + file parse + index + plan + execute per query.
    pub one_shot: LatencySample,
    /// Served path: HTTP round-trip + cached-plan resume + execute.
    pub served: LatencySample,
    /// Plan-cache hits observed during the served loop.
    pub cache_hits: u64,
    /// Plan-cache misses (exactly the one cold query).
    pub cache_misses: u64,
    /// `one_shot.mean_secs / served.mean_secs`.
    pub speedup_mean: f64,
}

impl ServeBenchReport {
    /// Renders the `reproduce serve` table.
    pub fn table(&self) -> String {
        let mut table = Table::new(
            "Serve amortization — warm cached count queries vs one-shot subgraph count",
            &["path", "runs", "mean (ms)", "min (ms)"],
        );
        let one_shot_label = format!("one-shot ({})", self.one_shot_mode);
        for (path, sample) in [
            (one_shot_label.as_str(), &self.one_shot),
            ("served (warm)", &self.served),
        ] {
            table.row(&[
                path.to_string(),
                sample.runs.to_string(),
                format!("{:.3}", sample.mean_secs * 1e3),
                format!("{:.3}", sample.min_secs * 1e3),
            ]);
        }
        table.note(&format!(
            "{} mode: G(n = {}, m = {}) seed {}, triangle count {}, {} engine thread(s) per query",
            self.mode, self.n, self.m, self.seed, self.count, self.threads,
        ));
        table.note(&format!(
            "speedup {:.1}x mean; plan cache: {} hits, {} misses over the served loop",
            self.speedup_mean, self.cache_hits, self.cache_misses,
        ));
        table.note(&format!(
            "written to {}",
            if self.mode == "quick" {
                "target/BENCH_serve.quick.json"
            } else {
                "BENCH_serve.json"
            },
        ));
        table.render()
    }

    /// Serializes the report as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let sample = |s: &LatencySample| {
            format!(
                "{{ \"runs\": {}, \"mean_secs\": {:.9}, \"min_secs\": {:.9} }}",
                s.runs, s.mean_secs, s.min_secs
            )
        };
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"benchmark\": \"serve_amortization\",\n");
        out.push_str(&format!("  \"mode\": \"{}\",\n", self.mode));
        out.push_str("  \"workload\": {\n");
        out.push_str("    \"graph\": \"gnm\",\n");
        out.push_str(&format!("    \"n\": {},\n", self.n));
        out.push_str(&format!("    \"m\": {},\n", self.m));
        out.push_str(&format!("    \"seed\": {},\n", self.seed));
        out.push_str("    \"pattern\": \"triangle\",\n");
        out.push_str("    \"mode\": \"count\",\n");
        out.push_str(&format!("    \"threads\": {},\n", self.threads));
        out.push_str(&format!("    \"count\": {}\n", self.count));
        out.push_str("  },\n");
        out.push_str(&format!(
            "  \"one_shot_mode\": \"{}\",\n",
            self.one_shot_mode
        ));
        out.push_str(&format!("  \"one_shot\": {},\n", sample(&self.one_shot)));
        out.push_str(&format!("  \"served\": {},\n", sample(&self.served)));
        out.push_str("  \"plan_cache\": {\n");
        out.push_str(&format!("    \"hits\": {},\n", self.cache_hits));
        out.push_str(&format!("    \"misses\": {}\n", self.cache_misses));
        out.push_str("  },\n");
        out.push_str(&format!("  \"speedup_mean\": {:.2}\n", self.speedup_mean));
        out.push_str("}\n");
        out
    }
}

/// Runs the comparison. Both paths count triangles on the same edge-list
/// file at the same engine thread count; only the fixed per-query costs
/// differ.
pub fn run_serve_bench(quick: bool) -> ServeBenchReport {
    let (mode, n, m, one_shot_runs, served_runs) = if quick {
        ("quick", 30_000usize, 60_000usize, 3usize, 30usize)
    } else {
        ("full", 150_000usize, 300_000usize, 10usize, 100usize)
    };
    let seed = 20_260_807u64;
    let threads = 1usize;

    // Materialize the input file both paths read.
    let graph = generators::gnm(n, m, seed);
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target");
    std::fs::create_dir_all(&dir).expect("target directory");
    let input = dir.join(format!("serve_bench_input_{mode}.txt"));
    subgraph_graph::io::write_edge_list_file(&graph, &input)
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", input.display()));

    // One-shot path: `subgraph count --input <file> --pattern triangle
    // --reducers 1` — startup, load, index, plan, run, every time. The real
    // binary is preferred (that is what a user's one-shot query pays); when
    // it has not been built, the in-process library path stands in.
    let opts = RequestOpts {
        source: GraphSource::file(&input),
        pattern: "triangle".to_string(),
        // Budget 1 plans the serial family on both paths: execution is
        // interactive-fast, so the fixed costs are what the numbers compare.
        reducers: Some(1),
        threads: Some(threads),
        memory_budget: None,
        spill_dir: None,
        strategy: None,
    };
    let cli = find_subgraph_binary();
    let one_shot_mode = if cli.is_some() {
        "cli-process"
    } else {
        "in-process"
    };
    let one_shot_count = |cli: &Option<std::path::PathBuf>| match cli {
        Some(bin) => cli_count(bin, &input, threads),
        None => {
            let (report, _) = count_instances(&opts).expect("one-shot count");
            report.count()
        }
    };
    let count = one_shot_count(&cli); // warm-up (page cache, binary pages)
    let mut one_shot_times = Vec::with_capacity(one_shot_runs);
    for _ in 0..one_shot_runs {
        let start = Instant::now();
        let measured = one_shot_count(&cli);
        one_shot_times.push(start.elapsed().as_secs_f64());
        assert_eq!(measured, count, "one-shot count is stable");
    }

    // Served path: load once, then warm queries against the running server.
    let store = GraphStore::open(&GraphSource::file(&input)).expect("server-side load");
    let engine = QueryEngine::new(store, 16, threads);
    let config = ServerConfig {
        listen: Some("127.0.0.1:0".to_string()),
        pool: 2,
        cache_capacity: 16,
        threads_per_query: threads,
        ..ServerConfig::default()
    };
    let server = spawn(engine, &config).expect("server starts");
    let addr = server.tcp_addr().expect("tcp listener bound");
    let target = "/query?pattern=triangle&reducers=1";
    let warm = client::get(&addr, target).expect("cold query");
    assert_eq!(warm.status, 200, "{}", warm.text());
    let mut served_times = Vec::with_capacity(served_runs);
    for _ in 0..served_runs {
        let start = Instant::now();
        let resp = client::get(&addr, target).expect("warm query");
        served_times.push(start.elapsed().as_secs_f64());
        let body = resp.text();
        assert!(
            body.contains(&format!("\"count\":{count}")),
            "served count disagrees with one-shot: {body}"
        );
        assert!(
            body.contains("\"cache_hit\":true"),
            "warm query must hit: {body}"
        );
    }
    let cache_hits = server.engine().cache().hits();
    let cache_misses = server.engine().cache().misses();
    server.shutdown();

    let one_shot = LatencySample::from_times(&one_shot_times);
    let served = LatencySample::from_times(&served_times);
    let speedup_mean = one_shot.mean_secs / served.mean_secs;
    ServeBenchReport {
        mode,
        n,
        m,
        seed,
        count,
        threads,
        one_shot_mode,
        one_shot,
        served,
        cache_hits,
        cache_misses,
        speedup_mean,
    }
}

/// Locates the `subgraph` release binary next to the running bench binary
/// (same directory, or its parent when running from `target/<p>/deps`).
fn find_subgraph_binary() -> Option<std::path::PathBuf> {
    let exe = std::env::current_exe().ok()?;
    let dir = exe.parent()?;
    for dir in [dir, dir.parent()?] {
        let candidate = dir.join(format!("subgraph{}", std::env::consts::EXE_SUFFIX));
        if candidate.is_file() {
            return Some(candidate);
        }
    }
    None
}

/// Runs one `subgraph count` process and returns the count it printed.
fn cli_count(bin: &std::path::Path, input: &std::path::Path, threads: usize) -> usize {
    let output = std::process::Command::new(bin)
        .arg("count")
        .arg("--input")
        .arg(input)
        .args(["--pattern", "triangle", "--reducers", "1"])
        .args(["--threads", &threads.to_string()])
        .output()
        .expect("running the subgraph binary");
    assert!(
        output.status.success(),
        "subgraph count failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8_lossy(&output.stdout)
        .trim()
        .parse()
        .expect("subgraph count prints the count")
}

/// Path of the tracked benchmark file: `BENCH_serve.json` at the repo root.
pub fn bench_json_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_serve.json")
}

/// Scratch path the quick (CI smoke) run writes to, under `target/`.
pub fn quick_json_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/BENCH_serve.quick.json")
}

/// Runs the comparison and writes its JSON — `BENCH_serve.json` at the
/// repository root in full mode, a scratch file under `target/` in quick
/// mode. The written file is re-read and validated; quick mode additionally
/// validates the tracked repo-root file when present. Returns the table.
pub fn serve_amortization(quick: bool) -> String {
    let report = run_serve_bench(quick);
    let path = if quick {
        quick_json_path()
    } else {
        bench_json_path()
    };
    std::fs::write(&path, report.to_json())
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
    let written = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot re-read {}: {e}", path.display()));
    validate_json(&written).unwrap_or_else(|e| panic!("{} is malformed JSON: {e}", path.display()));
    if quick {
        let tracked = bench_json_path();
        if let Ok(contents) = std::fs::read_to_string(&tracked) {
            validate_json(&contents)
                .unwrap_or_else(|e| panic!("{} is malformed JSON: {e}", tracked.display()));
        }
    }
    report.table()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn micro_report() -> ServeBenchReport {
        ServeBenchReport {
            mode: "quick",
            n: 100,
            m: 300,
            seed: 1,
            count: 42,
            threads: 1,
            one_shot_mode: "cli-process",
            one_shot: LatencySample {
                runs: 3,
                mean_secs: 0.050,
                min_secs: 0.045,
            },
            served: LatencySample {
                runs: 30,
                mean_secs: 0.005,
                min_secs: 0.004,
            },
            cache_hits: 30,
            cache_misses: 1,
            speedup_mean: 10.0,
        }
    }

    #[test]
    fn report_json_is_well_formed_and_table_reports_the_speedup() {
        let report = micro_report();
        validate_json(&report.to_json()).expect("generated JSON must validate");
        assert!(report.to_json().contains("\"speedup_mean\": 10.00"));
        let table = report.table();
        assert!(table.contains("one-shot"));
        assert!(table.contains("served (warm)"));
        assert!(table.contains("speedup 10.0x mean"));
        assert!(table.contains("hits"));
    }
}
