//! Computation-cost reproductions: convertibility (Theorem 6.1), OddCycle
//! (Theorem 7.1), decompositions (Theorem 7.2), bounded degree (Theorem 7.3)
//! and unequal relation sizes (Section 7.4).

use crate::report::{fmt, Table};
use subgraph_core::plan::{EnumerationRequest, StrategyKind};
use subgraph_core::relation_join::{case_b_worst_instance, evaluate_case_b, CycleJoinSizes};
use subgraph_core::serial::{
    enumerate_bounded_degree, enumerate_by_decomposition, enumerate_generic, enumerate_odd_cycles,
    enumerate_triangles_serial,
};
use subgraph_core::{is_convertible, predicted_parallel_work};
use subgraph_graph::generators;
use subgraph_pattern::catalog;
use subgraph_pattern::decompose::decompose;
use subgraph_shares::counting::useful_reducers;

/// Theorem 6.1 / Example 6.1 — total reducer work of the bucket-ordered
/// triangle algorithm stays within a constant factor of the serial work as the
/// number of reducers grows.
pub fn convertibility_table() -> String {
    let graph = generators::gnm(1_500, 18_000, 61);
    let serial = enumerate_triangles_serial(&graph);
    let report = is_convertible(3, 0.0, 1.5);
    let mut table = Table::new(
        "Theorem 6.1 — convertibility of the O(m^3/2) triangle algorithm",
        &[
            "buckets b",
            "reducers used",
            "total reducer work",
            "work / serial work",
            "predicted b^(p−α−2β)",
        ],
    );
    for b in [2usize, 4, 8, 16] {
        let run = EnumerationRequest::new(catalog::triangle(), &graph)
            .reducers(useful_reducers(b as u64, 3) as usize)
            .strategy(StrategyKind::BucketOrderedTriangles)
            .plan()
            .expect("triangle strategy applies")
            .execute();
        assert_eq!(run.count(), serial.count());
        let metrics = run.metrics.as_ref().unwrap();
        table.row(&[
            b.to_string(),
            metrics.reducers_used.to_string(),
            metrics.reducer_work.to_string(),
            fmt(metrics.reducer_work as f64 / serial.work.max(1) as f64),
            fmt(
                predicted_parallel_work(b, 3, 0.0, 1.5, graph.num_nodes(), graph.num_edges())
                    / (graph.num_edges() as f64).powf(1.5),
            ),
        ]);
    }
    table.note(&format!(
        "serial work (properly ordered 2-paths examined): {}; α + 2β = {} ≥ p = 3 ⇒ convertible = {}",
        serial.work,
        report.alpha + 2.0 * report.beta,
        report.convertible()
    ));
    table.render()
}

/// Theorem 7.1 / Algorithm 1 — OddCycle versus the generic matcher.
pub fn odd_cycle_table() -> String {
    let mut table = Table::new(
        "Algorithm 1 (OddCycle) — cycles of length 2k+1",
        &[
            "graph",
            "cycle",
            "OddCycle count",
            "oracle count",
            "OddCycle work",
            "m^(p/2) bound",
        ],
    );
    let configs = [
        ("G(30,120)", generators::gnm(30, 120, 71), 2usize),
        ("G(18,60)", generators::gnm(18, 60, 72), 3usize),
        ("K7", generators::complete(7), 2usize),
    ];
    for (name, graph, k) in configs {
        let p = 2 * k + 1;
        let fast = enumerate_odd_cycles(&graph, k);
        let oracle = enumerate_generic(&catalog::cycle(p), &graph);
        assert_eq!(fast.count(), oracle.count());
        table.row(&[
            name.to_string(),
            format!("C{p}"),
            fast.count().to_string(),
            oracle.count().to_string(),
            fast.work.to_string(),
            fmt((graph.num_edges() as f64).powf(p as f64 / 2.0)),
        ]);
    }
    table.render()
}

/// Theorem 7.2 — decomposition-based algorithms and their exponents.
pub fn decomposition_table() -> String {
    let graph = generators::gnm(40, 220, 73);
    let mut table = Table::new(
        "Theorem 7.2 — decomposition-based (q, (p−q)/2)-algorithms",
        &[
            "pattern",
            "q (isolated)",
            "β = (p−q)/2",
            "instances",
            "matches oracle",
            "work",
        ],
    );
    for (name, pattern) in [
        ("triangle", catalog::triangle()),
        ("square", catalog::square()),
        ("lollipop", catalog::lollipop()),
        ("C5", catalog::cycle(5)),
        ("star4", catalog::star(4)),
        ("K4", catalog::k4()),
    ] {
        let d = decompose(&pattern);
        let run = enumerate_by_decomposition(&pattern, &graph);
        let oracle = enumerate_generic(&pattern, &graph);
        table.row(&[
            name.to_string(),
            d.alpha.to_string(),
            fmt(d.beta()),
            run.count().to_string(),
            (run.count() == oracle.count() && run.duplicates() == 0).to_string(),
            run.work.to_string(),
        ]);
    }
    table.render()
}

/// Theorem 7.3 — the bounded-degree algorithm on Δ-regular trees (the
/// Θ(mΔ^{p−2}) worst case) and on degree-capped random graphs.
pub fn bounded_degree_table() -> String {
    let mut table = Table::new(
        "Theorem 7.3 — bounded-degree enumeration, work vs m·Δ^(p−2)",
        &[
            "graph",
            "Δ",
            "pattern",
            "instances",
            "work",
            "m·Δ^(p−2)",
            "work / bound",
        ],
    );
    let cases: Vec<(String, subgraph_graph::DataGraph)> = vec![
        (
            "Δ-regular tree (Δ=5)".into(),
            generators::regular_tree(5, 4),
        ),
        (
            "Δ-regular tree (Δ=8)".into(),
            generators::regular_tree(8, 3),
        ),
        (
            "degree-capped G(n,m)".into(),
            generators::bounded_degree(800, 2_400, 12, 74),
        ),
    ];
    for (name, graph) in cases {
        let delta = graph.max_degree();
        for (pname, pattern) in [("star4", catalog::star(4)), ("path4", catalog::path(4))] {
            let run = enumerate_bounded_degree(&pattern, &graph);
            let bound = graph.num_edges() as f64 * (delta as f64).powi(2);
            table.row(&[
                name.clone(),
                delta.to_string(),
                pname.to_string(),
                run.count().to_string(),
                run.work.to_string(),
                fmt(bound),
                fmt(run.work as f64 / bound),
            ]);
        }
    }
    table.note("a Δ-regular tree contains Θ(m·Δ^{p−2}) p-node stars (end of Section 7.3)");
    table.render()
}

/// Section 7.4 — cycle joins over relations of different sizes.
pub fn relation_size_table() -> String {
    let mut table = Table::new(
        "Section 7.4 — 5-cycle joins over relations of unequal sizes",
        &[
            "sizes n1..n5",
            "case",
            "bound",
            "√(Πn)",
            "measured output",
            "measured work",
        ],
    );
    let size_sets: [[f64; 5]; 4] = [
        [100.0, 100.0, 100.0, 100.0, 100.0],
        [20.0, 400.0, 25.0, 400.0, 20.0],
        [1.0, 1000.0, 1.0, 1000.0, 1.0],
        [10.0, 200.0, 10.0, 200.0, 10.0],
    ];
    for sizes in size_sets {
        let analysis = CycleJoinSizes::new(sizes);
        let (output, work) = {
            let relations =
                case_b_worst_instance(sizes[0] as usize, sizes[2] as usize, sizes[4] as usize);
            evaluate_case_b(&relations)
        };
        table.row(&[
            format!("{:?}", sizes.map(|s| s as u64)),
            format!("{:?}", analysis.case()),
            fmt(analysis.bound()),
            fmt(sizes.iter().product::<f64>().sqrt()),
            output.to_string(),
            work.to_string(),
        ]);
    }
    table.note(
        "the measured columns run the case-B strategy (join R1⋈R5, extend with R3, verify \
         R2/R4 by lookup) on the worst-case instances from the paper's lower-bound construction",
    );
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn odd_cycle_and_decomposition_tables_render() {
        assert!(odd_cycle_table().contains("OddCycle"));
        assert!(decomposition_table().contains("matches oracle"));
    }

    #[test]
    fn bounded_degree_table_renders() {
        assert!(bounded_degree_table().contains("regular tree"));
    }

    #[test]
    fn relation_size_table_has_both_cases() {
        let text = relation_size_table();
        assert!(text.contains("CaseA"));
        assert!(text.contains("CaseB"));
    }
}
