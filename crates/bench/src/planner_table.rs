//! The planner's strategy choices across catalog patterns and reducer
//! budgets — the cost-based comparison the paper performs by hand in
//! Sections 2 and 4, automated — plus the plan-time sweep and CI gate for
//! the branch-and-bound order-class search
//! ([`subgraph_core::plan::search`]).

use crate::report::{fmt, Table};
use std::time::Instant;
use subgraph_core::plan::{search_order_classes, EnumerationRequest, SearchMode};
use subgraph_graph::generators;
use subgraph_pattern::catalog;

/// One row per (pattern, budget): the chosen strategy, its predicted
/// replication and reducer work, how long planning took (wall-clock) with
/// the order-class search counters, and the measured communication after
/// executing the plan.
pub fn planner_choices() -> String {
    let graph = generators::gnm(250, 1_800, 20_130_417);
    let mut table = Table::new(
        "Planner — chosen strategy per pattern and reducer budget",
        &[
            "pattern",
            "budget k",
            "chosen strategy",
            "pred repl/edge",
            "pred work",
            "plan ms",
            "classes s/p",
            "measured kv pairs",
            "instances",
        ],
    );
    for pattern in ["triangle", "square", "lollipop", "c5"] {
        for k in [1usize, 64, 750] {
            let started = Instant::now();
            let plan = EnumerationRequest::named(pattern, &graph)
                .unwrap()
                .reducers(k)
                .plan()
                .expect("catalog patterns plan");
            let plan_ms = started.elapsed().as_secs_f64() * 1e3;
            // The search counters live on whichever candidate searched order
            // classes (cq-oriented); serial-only plans never search.
            let classes = plan
                .candidates()
                .iter()
                .map(|c| (c.classes_scored, c.classes_pruned))
                .find(|&(s, p)| s + p > 0);
            // The measured columns come from a count-only (streamed) run —
            // RunReport::count() stays accurate with a CountSink, so the
            // instances column never lies for runs that retained nothing.
            let run = plan.count();
            assert!(run.is_streamed());
            // The collect path agrees and verifies the exactly-once invariant.
            let collected = plan.execute();
            assert_eq!(collected.verified_duplicates(), Some(0));
            assert_eq!(run.count(), collected.count());
            assert_eq!(run.communication(), collected.communication());
            table.row(&[
                pattern.to_string(),
                k.to_string(),
                plan.strategy().to_string(),
                fmt(plan.predicted_replication()),
                fmt(plan.predicted_reducer_work()),
                format!("{plan_ms:.2}"),
                match classes {
                    Some((scored, pruned)) => format!("{scored}/{pruned}"),
                    None => "-".to_string(),
                },
                run.communication().to_string(),
                run.count().to_string(),
            ]);
        }
    }
    table.note("budget 1 means no cluster: the planner picks a serial Section 6-7 algorithm");
    table.note("Theorem 4.4 in action: cq-oriented is never chosen over the combined schemes");
    table.note(
        "classes s/p: CQ order classes scored / pruned by the branch-and-bound Shares lower \
         bound while estimating cq-oriented processing ('-': no search ran)",
    );
    table.note(
        "measured columns come from count-only runs (instances streamed through a CountSink, \
         not retained); a collect run is asserted identical",
    );
    table.render()
}

/// Plan-time measurements for one catalog pattern, in both search modes.
pub struct PatternPlanTiming {
    /// Catalog pattern name.
    pub pattern: &'static str,
    /// `p!/|Aut(S)|` — the order classes both modes account for.
    pub classes: usize,
    /// Classes branch-and-bound established with a solver call.
    pub scored: usize,
    /// Classes its lower bound eliminated.
    pub pruned: usize,
    /// Wall-clock of a full `plan()` under branch-and-bound (best of three).
    pub plan_millis: f64,
    /// Wall-clock of a full `plan()` under the exhaustive oracle (one run).
    pub exhaustive_millis: f64,
    /// The strategy each mode chose.
    pub chosen: String,
    /// Whether the exhaustive oracle chose the same strategy.
    pub modes_agree: bool,
    /// Winning-class cost bits from each mode (must be identical).
    pub winner_bits_equal: bool,
}

/// The full-catalog plan-time sweep: every pattern planned in both search
/// modes against the same generated graph the CLI acceptance command uses.
pub struct PlanTimingReport {
    /// Graph parameters (G(n, m) seed) the sweep planned against.
    pub n: usize,
    /// Edge count of the generated graph.
    pub m: usize,
    /// Generator seed.
    pub seed: u64,
    /// Reducer budget `k` for every plan.
    pub reducers: usize,
    /// One entry per catalog pattern.
    pub patterns: Vec<PatternPlanTiming>,
}

/// Runs the sweep: plans every catalog pattern in both modes, timing each.
pub fn plan_timing() -> PlanTimingReport {
    let (n, m, seed, reducers) = (1_000usize, 5_000usize, 7u64, 750usize);
    let graph = generators::gnm(n, m, seed);
    let mut patterns = Vec::new();
    for entry in catalog::entries() {
        let plan_with = |mode: SearchMode| {
            let started = Instant::now();
            let plan = EnumerationRequest::new(entry.sample.clone(), &graph)
                .reducers(reducers)
                .search_mode(mode)
                .plan()
                .expect("catalog patterns plan");
            (started.elapsed().as_secs_f64() * 1e3, plan)
        };
        // Best of three for the fast path (the number CI gates on); the
        // slow oracle runs once — it only exists for the parity check.
        let mut plan_millis = f64::INFINITY;
        let mut chosen = String::new();
        let mut counters = (0usize, 0usize);
        for _ in 0..3 {
            let (ms, plan) = plan_with(SearchMode::BranchAndBound);
            plan_millis = plan_millis.min(ms);
            chosen = plan.strategy().to_string();
            counters = plan
                .candidates()
                .iter()
                .map(|c| (c.classes_scored, c.classes_pruned))
                .find(|&(s, p)| s + p > 0)
                .unwrap_or((0, 0));
        }
        let (exhaustive_millis, oracle) = plan_with(SearchMode::Exhaustive);
        // The winning-class cost itself, pinned bitwise between the modes.
        let k = reducers as f64;
        let bb = search_order_classes(&entry.sample, k, SearchMode::BranchAndBound);
        let ex = search_order_classes(&entry.sample, k, SearchMode::Exhaustive);
        patterns.push(PatternPlanTiming {
            pattern: entry.name,
            classes: entry.order_classes(),
            scored: counters.0,
            pruned: counters.1,
            plan_millis,
            exhaustive_millis,
            modes_agree: chosen == oracle.strategy().to_string(),
            chosen,
            winner_bits_equal: bb.winner_cost.to_bits() == ex.winner_cost.to_bits()
                && bb.winner == ex.winner,
        });
    }
    PlanTimingReport {
        n,
        m,
        seed,
        reducers,
        patterns,
    }
}

impl PlanTimingReport {
    /// Renders the sweep as a table.
    pub fn table(&self) -> String {
        let mut table = Table::new(
            "Planner — plan time per catalog pattern (branch-and-bound vs exhaustive)",
            &[
                "pattern",
                "classes",
                "scored",
                "pruned",
                "plan ms",
                "exhaustive ms",
                "speedup",
                "chosen strategy",
                "modes agree",
            ],
        );
        for p in &self.patterns {
            let speedup = if p.plan_millis > 0.0 {
                p.exhaustive_millis / p.plan_millis
            } else {
                0.0
            };
            table.row(&[
                p.pattern.to_string(),
                p.classes.to_string(),
                p.scored.to_string(),
                p.pruned.to_string(),
                format!("{:.2}", p.plan_millis),
                format!("{:.2}", p.exhaustive_millis),
                format!("{speedup:.1}x"),
                p.chosen.clone(),
                (p.modes_agree && p.winner_bits_equal).to_string(),
            ]);
        }
        table.note(&format!(
            "G(n = {}, m = {}) seed {}, reducer budget {}; plan ms is the best of three \
             full plan() calls under branch-and-bound; written to BENCH_planner.json",
            self.n, self.m, self.seed, self.reducers,
        ));
        table.note(
            "modes agree: same chosen strategy, same winning order class, bitwise-identical \
             winning-class cost",
        );
        table.render()
    }

    /// Serializes the report as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"benchmark\": \"planner_plan_time\",\n");
        out.push_str("  \"workload\": {\n");
        out.push_str("    \"graph\": \"gnm\",\n");
        out.push_str(&format!("    \"n\": {},\n", self.n));
        out.push_str(&format!("    \"m\": {},\n", self.m));
        out.push_str(&format!("    \"seed\": {},\n", self.seed));
        out.push_str(&format!("    \"reducers\": {}\n", self.reducers));
        out.push_str("  },\n");
        out.push_str("  \"results\": [\n");
        for (i, p) in self.patterns.iter().enumerate() {
            out.push_str(&format!(
                "    {{ \"pattern\": \"{}\", \"classes\": {}, \"scored\": {}, \"pruned\": {}, \
                 \"plan_ms\": {:.3}, \"exhaustive_ms\": {:.3}, \"chosen\": \"{}\", \
                 \"modes_agree\": {} }}{}\n",
                p.pattern,
                p.classes,
                p.scored,
                p.pruned,
                p.plan_millis,
                p.exhaustive_millis,
                p.chosen,
                p.modes_agree && p.winner_bits_equal,
                if i + 1 == self.patterns.len() {
                    ""
                } else {
                    ","
                },
            ));
        }
        out.push_str("  ]\n");
        out.push_str("}\n");
        out
    }
}

/// Path of the tracked benchmark file: `BENCH_planner.json` at the repo root.
pub fn bench_json_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_planner.json")
}

/// The plan-time budget the gate enforces on `hypercube3` (release builds).
pub const HYPERCUBE3_BUDGET_MILLIS: f64 = 50.0;

/// The CI plan gate: runs the full-catalog sweep, writes
/// `BENCH_planner.json`, and fails if `hypercube3` planning exceeds
/// [`HYPERCUBE3_BUDGET_MILLIS`] (release builds) or if any catalog pattern's
/// chosen strategy or winning-class cost differs between the search modes.
pub fn plan_gate() -> Result<String, String> {
    let report = plan_timing();
    let mut out = report.table();
    let path = bench_json_path();
    std::fs::write(&path, report.to_json())
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
    let written = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot re-read {}: {e}", path.display()));
    crate::shuffle::validate_json(&written)
        .unwrap_or_else(|e| panic!("{} is malformed JSON: {e}", path.display()));

    for p in &report.patterns {
        if !p.modes_agree {
            return Err(format!(
                "{out}\nplan gate FAILED: {} chose {:?} under branch-and-bound but the \
                 exhaustive oracle disagrees\n",
                p.pattern, p.chosen,
            ));
        }
        if !p.winner_bits_equal {
            return Err(format!(
                "{out}\nplan gate FAILED: {} winning-class cost differs bitwise between \
                 search modes\n",
                p.pattern,
            ));
        }
    }
    let hypercube = report
        .patterns
        .iter()
        .find(|p| p.pattern == "hypercube3")
        .expect("hypercube3 is a catalog pattern");
    if cfg!(debug_assertions) {
        out.push_str(&format!(
            "\nplan gate: timing budget skipped in debug builds (hypercube3 planned in \
             {:.2} ms); strategy/cost parity checked on all {} patterns\n",
            hypercube.plan_millis,
            report.patterns.len(),
        ));
        return Ok(out);
    }
    if hypercube.plan_millis > HYPERCUBE3_BUDGET_MILLIS {
        return Err(format!(
            "{out}\nplan gate FAILED: hypercube3 planned in {:.2} ms > {HYPERCUBE3_BUDGET_MILLIS} ms \
             budget (the branch-and-bound search regressed)\n",
            hypercube.plan_millis,
        ));
    }
    out.push_str(&format!(
        "\nplan gate passed: hypercube3 planned in {:.2} ms (budget {HYPERCUBE3_BUDGET_MILLIS} ms), \
         both search modes agree on all {} patterns\n",
        hypercube.plan_millis,
        report.patterns.len(),
    ));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn planner_table_renders_serial_and_parallel_choices() {
        let text = planner_choices();
        assert!(text.contains("serial-"));
        assert!(text.contains("bucket-oriented"));
        assert!(text.contains("plan ms"));
        assert!(text.contains("classes s/p"));
        // Theorem 4.4: cq-oriented never wins a row (the trailing notes
        // mention it by name, so only inspect the data rows).
        for row in text
            .lines()
            .filter(|l| !l.trim_start().starts_with("note:"))
        {
            assert!(
                !row.contains("cq-oriented"),
                "Theorem 4.4 violated:\n{text}"
            );
        }
    }

    #[test]
    fn plan_timing_report_is_well_formed() {
        // The full sweep solves every order class under the exhaustive
        // oracle, which the debug solver makes too slow for unit tests; the
        // release CI gate runs it for real.
        if cfg!(debug_assertions) {
            return;
        }
        let report = plan_timing();
        assert_eq!(report.patterns.len(), catalog::entries().len());
        for p in &report.patterns {
            assert!(p.modes_agree, "{}", p.pattern);
            assert!(p.winner_bits_equal, "{}", p.pattern);
            assert_eq!(p.scored + p.pruned, p.classes, "{}", p.pattern);
        }
        crate::shuffle::validate_json(&report.to_json()).expect("valid JSON");
    }
}
