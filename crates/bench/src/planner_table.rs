//! The planner's strategy choices across catalog patterns and reducer
//! budgets — the cost-based comparison the paper performs by hand in
//! Sections 2 and 4, automated.

use crate::report::{fmt, Table};
use subgraph_core::plan::EnumerationRequest;
use subgraph_graph::generators;

/// One row per (pattern, budget): the chosen strategy, its predicted
/// replication and reducer work, and the measured communication after
/// executing the plan.
pub fn planner_choices() -> String {
    let graph = generators::gnm(250, 1_800, 20_130_417);
    let mut table = Table::new(
        "Planner — chosen strategy per pattern and reducer budget",
        &[
            "pattern",
            "budget k",
            "chosen strategy",
            "pred repl/edge",
            "pred work",
            "measured kv pairs",
            "instances",
        ],
    );
    for pattern in ["triangle", "square", "lollipop", "c5"] {
        for k in [1usize, 64, 750] {
            let plan = EnumerationRequest::named(pattern, &graph)
                .unwrap()
                .reducers(k)
                .plan()
                .expect("catalog patterns plan");
            // The measured columns come from a count-only (streamed) run —
            // RunReport::count() stays accurate with a CountSink, so the
            // instances column never lies for runs that retained nothing.
            let run = plan.count();
            assert!(run.is_streamed());
            // The collect path agrees and verifies the exactly-once invariant.
            let collected = plan.execute();
            assert_eq!(collected.verified_duplicates(), Some(0));
            assert_eq!(run.count(), collected.count());
            assert_eq!(run.communication(), collected.communication());
            table.row(&[
                pattern.to_string(),
                k.to_string(),
                plan.strategy().to_string(),
                fmt(plan.predicted_replication()),
                fmt(plan.predicted_reducer_work()),
                run.communication().to_string(),
                run.count().to_string(),
            ]);
        }
    }
    table.note("budget 1 means no cluster: the planner picks a serial Section 6-7 algorithm");
    table.note("Theorem 4.4 in action: cq-oriented is never chosen over the combined schemes");
    table.note(
        "measured columns come from count-only runs (instances streamed through a CountSink, \
         not retained); a collect run is asserted identical",
    );
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn planner_table_renders_serial_and_parallel_choices() {
        let text = planner_choices();
        assert!(text.contains("serial-"));
        assert!(text.contains("bucket-oriented"));
        // Theorem 4.4: cq-oriented never wins a row (the trailing notes
        // mention it by name, so only inspect the data rows).
        for row in text
            .lines()
            .filter(|l| !l.trim_start().starts_with("note:"))
        {
            assert!(
                !row.contains("cq-oriented"),
                "Theorem 4.4 violated:\n{text}"
            );
        }
    }
}
