//! The PR's acceptance check: for every catalog pattern, the line count of
//! `subgraph enumerate --format ndjson` equals `subgraph count` on the same
//! input at engine thread counts {1, 2, 8} — streamed through the serializing
//! sinks, never materialized as a `Vec<Instance>`.

use subgraph_cli::{count_instances, enumerate_to_writer, Format, RequestOpts};
use subgraph_graph::GraphSource;
use subgraph_pattern::catalog;

/// A temp edge-list file shared by the tests; regenerated per call so tests
/// stay independent under any test-runner thread count.
fn edge_list_fixture(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("subgraph-cli-parity");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    // Small on purpose: the sweep below runs 10 patterns x 3 thread counts,
    // and the large-pattern bucket schemes fan out over hundreds of CQs.
    let graph = subgraph_graph::generators::gnp_sparse(26, 0.11, 23);
    subgraph_graph::io::write_edge_list_file(&graph, &path).unwrap();
    path
}

fn opts(source: GraphSource, pattern: &str, threads: usize) -> RequestOpts {
    RequestOpts {
        source,
        pattern: pattern.to_string(),
        // A modest budget keeps the bucket schemes' replication small on the
        // larger patterns while still planning map-reduce strategies.
        reducers: Some(16),
        threads: Some(threads),
        memory_budget: None,
        spill_dir: None,
        strategy: None,
    }
}

#[test]
fn ndjson_line_count_matches_count_for_every_pattern_and_thread_count() {
    let path = edge_list_fixture("parity.txt");
    for entry in catalog::entries() {
        // The count is thread-independent (pinned by the engine's own parity
        // suites), so plan it once: planning alone is expensive for 8-node
        // patterns (hypercube3 fans out over 8!/48 = 840 CQ order classes),
        // and each CLI invocation re-plans.
        let expected = count_instances(&opts(GraphSource::file(&path), entry.name, 2))
            .unwrap_or_else(|e| panic!("count {}: {e}", entry.name))
            .0
            .count();
        for threads in [1usize, 2, 8] {
            let o = opts(GraphSource::file(&path), entry.name, threads);
            let mut buf = Vec::new();
            let summary = enumerate_to_writer(&o, Format::Ndjson, &mut buf)
                .unwrap_or_else(|e| panic!("enumerate {} @ {threads}t: {e}", entry.name));
            let text = String::from_utf8(buf).unwrap();
            assert_eq!(
                text.lines().count(),
                expected,
                "ndjson line count vs count for {} at {} threads",
                entry.name,
                threads
            );
            assert_eq!(summary.written, expected);
            assert!(
                summary.report.is_streamed(),
                "enumerate must stream, not collect"
            );
        }
    }
}

#[test]
fn every_format_serializes_the_same_number_of_instances() {
    let path = edge_list_fixture("formats.txt");
    let o = opts(GraphSource::file(&path), "triangle", 2);
    let expected = count_instances(&o).unwrap().0.count();
    assert!(expected > 0, "fixture graph must contain triangles");

    let mut ndjson = Vec::new();
    assert_eq!(
        enumerate_to_writer(&o, Format::Ndjson, &mut ndjson)
            .unwrap()
            .written,
        expected
    );
    assert_eq!(String::from_utf8(ndjson).unwrap().lines().count(), expected);

    let mut csv = Vec::new();
    assert_eq!(
        enumerate_to_writer(&o, Format::Csv, &mut csv)
            .unwrap()
            .written,
        expected
    );
    let csv_text = String::from_utf8(csv).unwrap();
    assert_eq!(csv_text.lines().count(), expected + 1, "header + rows");
    assert!(csv_text.starts_with("nodes,edges\n"));

    let mut edges = Vec::new();
    assert_eq!(
        enumerate_to_writer(&o, Format::EdgeList, &mut edges)
            .unwrap()
            .written,
        expected
    );
    let edge_text = String::from_utf8(edges).unwrap();
    assert_eq!(
        edge_text
            .lines()
            .filter(|l| l.starts_with("# instance"))
            .count(),
        expected
    );
}

#[test]
fn deterministic_engine_makes_ndjson_output_identical_across_runs() {
    let path = edge_list_fixture("deterministic.txt");
    let render = || {
        let mut buf = Vec::new();
        enumerate_to_writer(
            &opts(GraphSource::file(&path), "triangle", 2),
            Format::Ndjson,
            &mut buf,
        )
        .unwrap();
        String::from_utf8(buf).unwrap()
    };
    assert_eq!(render(), render());
}

#[test]
fn forced_strategies_stream_the_same_count() {
    let path = edge_list_fixture("strategies.txt");
    let baseline = count_instances(&opts(GraphSource::file(&path), "triangle", 2))
        .unwrap()
        .0
        .count();
    for strategy in ["bucket-oriented", "multiway-triangles", "cascade-triangles"] {
        let mut o = opts(GraphSource::file(&path), "triangle", 2);
        o.strategy = subgraph_cli::parse_strategy(strategy);
        assert!(o.strategy.is_some(), "{strategy} must parse");
        let mut buf = Vec::new();
        let summary = enumerate_to_writer(&o, Format::Ndjson, &mut buf).unwrap();
        assert_eq!(summary.written, baseline, "strategy {strategy}");
    }
}

#[test]
fn served_streams_match_the_one_shot_cli_byte_for_byte() {
    use subgraph_serve::{client, spawn, GraphStore, QueryEngine, ServerConfig};

    let path = edge_list_fixture("served.txt");
    let o = opts(GraphSource::file(&path), "triangle", 2);
    let mut expected = Vec::new();
    enumerate_to_writer(&o, Format::Ndjson, &mut expected).unwrap();
    assert!(!expected.is_empty());

    // The server loads the same file once and answers at the same per-query
    // thread count and reducer budget; deterministic mode makes the bytes a
    // pure function of graph + plan + thread count, so the streams match.
    let store = GraphStore::open(&GraphSource::file(&path)).unwrap();
    let engine = QueryEngine::new(store, 8, 2);
    let config = ServerConfig {
        listen: Some("127.0.0.1:0".to_string()),
        pool: 2,
        ..ServerConfig::default()
    };
    let server = spawn(engine, &config).unwrap();
    let addr = server.tcp_addr().unwrap();
    let resp = client::get(
        &addr,
        "/query?pattern=triangle&mode=enumerate&threads=2&reducers=16",
    )
    .unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(
        resp.body, expected,
        "served ndjson differs from one-shot CLI"
    );
    server.shutdown();
}
