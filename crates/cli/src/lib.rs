//! The `subgraph` command-line tool: the dataset-to-output path of the whole
//! workspace.
//!
//! The paper's motivating workload is enumerating sample-graph instances in
//! real social-network snapshots; this crate is the entry point that actually
//! takes an edge-list file (or a generator spec) and produces instances.
//! Four subcommands wire the stack end-to-end:
//!
//! * `enumerate` — load a [`GraphSource`], plan an
//!   [`EnumerationRequest`] for a catalog pattern, and stream every instance
//!   through a serializing sink ([`NdjsonSink`], [`CsvSink`],
//!   [`EdgeListSink`]) to a file or stdout. No `Vec<Instance>` is ever
//!   materialized.
//! * `count` — the same plan through the zero-allocation
//!   [`subgraph_core::CountSink`] path: one number out, O(1) result memory.
//! * `explain` — print the planner's cost table
//!   ([`subgraph_core::ExecutionPlan::explain`]) for a request *without*
//!   running it.
//! * `catalog` — list every named pattern with node/edge counts and
//!   automorphism group sizes ([`subgraph_pattern::catalog::entries`]).
//! * `serve` — start the long-lived query service
//!   ([`subgraph_serve`]): load the graph once, then answer `count` and
//!   `enumerate` queries over HTTP with a shared plan cache.
//!
//! Two helpers round out the set: `generate` materializes any graph spec as
//! an edge-list file so the other subcommands (and external tools) have
//! something to read, and `convert` re-encodes any graph source as a binary
//! `.sgr` container ([`subgraph_graph::sgr`]) that loads back zero-copy via
//! `mmap` — every subcommand accepts `.sgr` files transparently because
//! [`GraphSource`] sniffs the format from the file's first bytes.
//!
//! Patterns are either catalog names (`triangle`, `k4`, …), inline edge
//! specs (`--pattern a-b,b-c,c-a`), or files holding a spec
//! (`--pattern-file query.pat`: one edge per line, `#` comments), resolved
//! by [`EnumerationRequest::resolve`].
//!
//! The crate is a thin library plus a `main` shim so that the bench harness
//! and the integration tests drive exactly the code the binary runs:
//!
//! ```
//! use subgraph_cli::{run, Command};
//!
//! let cmd = Command::parse(&["count", "--generate", "gnp:60,0.1,7", "--pattern", "triangle"])
//!     .unwrap();
//! let mut stdout = Vec::new();
//! run(&cmd, &mut stdout).unwrap();
//! let printed: usize = String::from_utf8(stdout).unwrap().trim().parse().unwrap();
//! assert!(printed > 0);
//! ```

use std::fmt;
use std::io::{self, Write};
use std::path::PathBuf;
use std::time::Duration;

use subgraph_core::sink::SerializeSink;
use subgraph_core::{
    CsvSink, EdgeListSink, EnumerationRequest, NdjsonSink, PlanError, RunReport, StrategyKind,
};
use subgraph_graph::io::write_edge_list;
use subgraph_graph::{write_sgr_file, DataGraph, GraphSource, ReadStats, SourceError};
use subgraph_mapreduce::EngineConfig;
use subgraph_pattern::catalog;
use subgraph_serve::{GraphStore, QueryEngine, ServerConfig};

/// Output serialization of `enumerate`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Format {
    /// One JSON object per line (`{"nodes":[…],"edges":[[u,v],…]}`).
    Ndjson,
    /// CSV with a `nodes,edges` header.
    Csv,
    /// Edge-list dialect: `# instance k` comments plus `u v` lines.
    EdgeList,
}

impl Format {
    fn parse(name: &str) -> Option<Format> {
        match name {
            "ndjson" => Some(Format::Ndjson),
            "csv" => Some(Format::Csv),
            "edges" | "edge-list" => Some(Format::EdgeList),
            _ => None,
        }
    }
}

/// Everything `enumerate`, `count` and `explain` share: which graph, which
/// pattern, and how to plan/run the request.
#[derive(Clone, Debug)]
pub struct RequestOpts {
    /// Where the data graph comes from.
    pub source: GraphSource,
    /// Catalog pattern name (`triangle`, `c5`, `k4`, …) or inline edge spec
    /// (`a-b,b-c,c-a`).
    pub pattern: String,
    /// Reducer budget `k` (defaults to
    /// [`subgraph_core::plan::request::DEFAULT_REDUCERS`]).
    pub reducers: Option<usize>,
    /// Worker threads for the engine (defaults to available parallelism).
    pub threads: Option<usize>,
    /// Resident-memory budget in bytes for the shuffle (`--memory-budget`);
    /// `None` or 0 keeps everything in memory.
    pub memory_budget: Option<usize>,
    /// Base directory for spill run files (`--spill-dir`); `None` uses the
    /// OS temp dir.
    pub spill_dir: Option<PathBuf>,
    /// Force a strategy instead of letting the planner choose.
    pub strategy: Option<StrategyKind>,
}

impl RequestOpts {
    fn load_graph(&self) -> Result<(DataGraph, Option<ReadStats>), CliError> {
        Ok(self.source.load_with_stats()?)
    }

    fn request<'g>(&self, graph: &'g DataGraph) -> Result<EnumerationRequest<'g>, CliError> {
        let mut request =
            EnumerationRequest::resolve(&self.pattern, graph).map_err(|e| match e {
                PlanError::UnknownPattern(name) => CliError::Run(format!(
                    "unknown pattern {name:?} — run `subgraph catalog` for the list, \
                 or give an inline spec like a-b,b-c,c-a"
                )),
                other => CliError::from(other),
            })?;
        if let Some(k) = self.reducers {
            request = request.reducers(k);
        }
        if self.threads.is_some() || self.memory_budget.is_some() || self.spill_dir.is_some() {
            let mut engine = match self.threads {
                Some(t) => EngineConfig::with_threads(t),
                None => EngineConfig::default(),
            };
            if let Some(bytes) = self.memory_budget {
                engine = engine.memory_budget(bytes);
            }
            if let Some(dir) = &self.spill_dir {
                engine = engine.spill_dir(dir.clone());
            }
            // Fail fast on an unusable spill dir — before planning, not as a
            // mid-round panic.
            engine.validate_spill_dir().map_err(CliError::Run)?;
            request = request.engine(engine);
        }
        if let Some(kind) = self.strategy {
            request = request.strategy(kind);
        }
        Ok(request)
    }
}

/// A parsed `subgraph` invocation.
#[derive(Clone, Debug)]
pub enum Command {
    /// Stream every instance to a writer in the chosen [`Format`].
    Enumerate {
        /// The request to run.
        opts: RequestOpts,
        /// Serialization format (default ndjson).
        format: Format,
        /// Output file; `None` streams to stdout.
        output: Option<PathBuf>,
        /// Print the run report to stderr afterwards.
        verbose: bool,
    },
    /// Count instances through the zero-allocation sink path.
    Count {
        /// The request to run.
        opts: RequestOpts,
        /// Print the run report to stderr after the count.
        verbose: bool,
    },
    /// Print the planner's cost table without running the request.
    Explain {
        /// The request to plan.
        opts: RequestOpts,
    },
    /// List the pattern catalog.
    Catalog,
    /// Start the long-lived query service over one shared graph.
    Serve {
        /// The data graph to serve.
        source: GraphSource,
        /// TCP listen address (default `127.0.0.1:7878`; port 0 picks one).
        listen: Option<String>,
        /// Unix-domain socket path (unix only; in addition to or instead of
        /// TCP).
        unix: Option<PathBuf>,
        /// Plan-cache capacity in entries (default 64; 0 disables caching).
        plan_cache: usize,
        /// Worker threads handling connections (default 4).
        pool: usize,
        /// Per-query engine thread budget (default 1).
        threads: usize,
        /// Per-query resident-memory budget in bytes for the shuffle
        /// (`--memory-budget`; 0 = unbounded).
        memory_budget: usize,
        /// Base directory for spill run files (`--spill-dir`; `None` uses
        /// the OS temp dir).
        spill_dir: Option<PathBuf>,
        /// Per-connection socket I/O timeout in seconds (default 30;
        /// 0 disables — a stalled client then holds its worker forever).
        timeout_secs: u64,
        /// Log every startup detail, including input hygiene counters.
        verbose: bool,
    },
    /// Materialize a graph source as an edge-list file.
    Generate {
        /// The graph to materialize (usually a generator spec).
        source: GraphSource,
        /// Output file; `None` streams to stdout.
        output: Option<PathBuf>,
    },
    /// Re-encode a graph source as a binary `.sgr` container.
    Convert {
        /// The graph to convert (a text edge list, a generator spec, or
        /// even an existing `.sgr` file to re-canonicalize).
        source: GraphSource,
        /// The `.sgr` file to write (required — the container is binary, so
        /// it never goes to stdout).
        output: PathBuf,
        /// Overwrite an existing output file (`--force`); without it an
        /// existing file is an error.
        force: bool,
        /// Also report input hygiene counters for text sources.
        verbose: bool,
    },
}

/// How an invocation failed, carrying the process exit code to use.
#[derive(Debug)]
pub enum CliError {
    /// Bad arguments (exit code 2): the message plus the usage text.
    Usage(String),
    /// A runtime failure (exit code 1): unreadable file, failing plan, I/O.
    Run(String),
    /// The downstream consumer closed stdout (`enumerate … | head`). Not a
    /// failure: the binary exits 0 without a message, like any well-behaved
    /// pipeline stage.
    BrokenPipe,
}

impl CliError {
    /// The conventional process exit code for this error.
    pub fn exit_code(&self) -> i32 {
        match self {
            CliError::Usage(_) => 2,
            CliError::Run(_) => 1,
            CliError::BrokenPipe => 0,
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "{msg}"),
            CliError::Run(msg) => write!(f, "{msg}"),
            CliError::BrokenPipe => write!(f, "broken pipe"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<SourceError> for CliError {
    fn from(e: SourceError) -> Self {
        CliError::Run(e.to_string())
    }
}

impl From<PlanError> for CliError {
    fn from(e: PlanError) -> Self {
        CliError::Run(e.to_string())
    }
}

impl From<io::Error> for CliError {
    fn from(e: io::Error) -> Self {
        if e.kind() == io::ErrorKind::BrokenPipe {
            CliError::BrokenPipe
        } else {
            CliError::Run(format!("i/o error: {e}"))
        }
    }
}

/// The usage text `subgraph --help` (and every usage error) prints.
pub const USAGE: &str = "usage: subgraph <subcommand> [options]

subcommands:
  enumerate   stream every instance of a pattern to stdout or a file
  count       count instances (zero per-instance allocation)
  explain     print the planner's cost table without running anything
  catalog     list the named patterns
  serve       start a long-lived query service over one shared graph
  generate    write a graph spec out as an edge-list file
  convert     re-encode a graph source as a binary .sgr file (mmap-loadable)

input (enumerate / count / explain / serve / convert take exactly one):
  --input <file>        read a SNAP-style edge list (`u v` per line, # comments)
                        or a binary .sgr file — the format is sniffed from the
                        content, not the extension
  --graph <file>        alias of --input
  --generate <spec>     synthesize a graph: gnm:<n>,<m>[,seed]
                        gnp:<n>,<p>[,seed] | power-law:<n>,<m>,<gamma>[,seed]

request options:
  --pattern <p>         catalog pattern (see `subgraph catalog`) or inline
                        edge spec like a-b,b-c,c-a; required
  --pattern-file <f>    read the pattern spec from a file instead (one edge
                        per line or comma-separated, # comments)
  --reducers <k>        reducer budget the plan is optimized for (default 64;
                        <= 1 plans a serial algorithm)
  --threads <t>         engine worker threads (default: all cores;
                        for serve: per-query budget, default 1)
  --memory-budget <b>   resident-memory budget for the shuffle; past it the
                        engine spills to disk (suffixes K/M/G, e.g. 512M, 2G;
                        default 0 = unbounded, never touch disk)
  --spill-dir <dir>     where spill run files go (default: the OS temp dir;
                        always cleaned up, even on panic)
  --strategy <name>     force a strategy (e.g. bucket-oriented, cq-oriented)

output options:
  --format <fmt>        enumerate serialization: ndjson (default) | csv | edges
  --output <file>       write results there instead of stdout
  --force               convert only: overwrite an existing --output file
  --verbose             print the run report (and input hygiene) to stderr

serve options (see docs/SERVE.md):
  --listen <addr>       TCP listen address (default 127.0.0.1:7878; port 0
                        picks a free port)
  --unix <path>         also listen on a unix-domain socket (unix only)
  --plan-cache <n>      plan-cache capacity in entries (default 64; 0 = off)
  --pool <n>            connection worker threads (default 4)
  --timeout-secs <s>    per-connection socket I/O timeout (default 30; 0 = off)

examples:
  subgraph generate gnp:10000,0.002,7 --output graph.txt
  subgraph count --input graph.txt --pattern triangle
  subgraph enumerate --input graph.txt --pattern a-b,b-c,c-a --format ndjson
  subgraph explain --generate power-law:100000,500000,2.5 --pattern lollipop --reducers 750
  subgraph convert --input graph.txt --output graph.sgr
  subgraph serve --graph graph.sgr --listen 127.0.0.1:7878 --plan-cache 128
";

impl Command {
    /// Parses a full argument vector (without the program name).
    pub fn parse(args: &[&str]) -> Result<Command, CliError> {
        let usage = |msg: String| CliError::Usage(msg);
        let (sub, rest) = args
            .split_first()
            .ok_or_else(|| usage("missing subcommand".into()))?;
        // `subgraph --help` / `-h` / `help`: the empty usage message makes
        // `run_main` print the usage text on stdout and exit 0.
        if matches!(*sub, "--help" | "-h" | "help") {
            return Err(usage(String::new()));
        }

        // Uniform flag scan; each subcommand validates what applies to it.
        let mut input: Option<String> = None;
        let mut generate: Option<String> = None;
        let mut pattern: Option<String> = None;
        let mut pattern_file: Option<PathBuf> = None;
        let mut format: Option<String> = None;
        let mut output: Option<PathBuf> = None;
        let mut reducers: Option<usize> = None;
        let mut threads: Option<usize> = None;
        let mut memory_budget: Option<usize> = None;
        let mut spill_dir: Option<PathBuf> = None;
        let mut strategy: Option<String> = None;
        let mut listen: Option<String> = None;
        let mut unix: Option<PathBuf> = None;
        let mut plan_cache: Option<usize> = None;
        let mut pool: Option<usize> = None;
        let mut timeout_secs: Option<u64> = None;
        let mut force = false;
        let mut verbose = false;
        let mut positional: Vec<String> = Vec::new();

        let mut it = rest.iter();
        while let Some(&arg) = it.next() {
            let mut value = |flag: &str| -> Result<String, CliError> {
                it.next()
                    .map(|s| s.to_string())
                    .ok_or_else(|| CliError::Usage(format!("{flag} needs a value")))
            };
            match arg {
                "--input" => input = Some(value("--input")?),
                "--graph" => input = Some(value("--graph")?),
                "--generate" => generate = Some(value("--generate")?),
                "--pattern" => pattern = Some(value("--pattern")?),
                "--pattern-file" => pattern_file = Some(PathBuf::from(value("--pattern-file")?)),
                "--format" => format = Some(value("--format")?),
                "--output" | "-o" => output = Some(PathBuf::from(value("--output")?)),
                "--reducers" => {
                    reducers = Some(value("--reducers")?.parse().map_err(|_| {
                        CliError::Usage("--reducers needs a non-negative integer".into())
                    })?)
                }
                "--threads" => {
                    threads = Some(value("--threads")?.parse().map_err(|_| {
                        CliError::Usage("--threads needs a positive integer".into())
                    })?)
                }
                "--memory-budget" => {
                    memory_budget =
                        Some(parse_size(&value("--memory-budget")?).ok_or_else(|| {
                            CliError::Usage(
                                "--memory-budget needs a byte count like 512M or 2G \
                                 (suffixes K, M, G; 0 = unbounded)"
                                    .into(),
                            )
                        })?)
                }
                "--spill-dir" => spill_dir = Some(PathBuf::from(value("--spill-dir")?)),
                "--strategy" => strategy = Some(value("--strategy")?),
                "--listen" => listen = Some(value("--listen")?),
                "--unix" => unix = Some(PathBuf::from(value("--unix")?)),
                "--plan-cache" => {
                    plan_cache = Some(value("--plan-cache")?.parse().map_err(|_| {
                        CliError::Usage("--plan-cache needs a non-negative integer".into())
                    })?)
                }
                "--pool" => {
                    pool =
                        Some(value("--pool")?.parse::<usize>().map_err(|_| {
                            CliError::Usage("--pool needs a positive integer".into())
                        })?)
                }
                "--timeout-secs" => {
                    timeout_secs = Some(value("--timeout-secs")?.parse::<u64>().map_err(|_| {
                        CliError::Usage("--timeout-secs needs a non-negative integer".into())
                    })?)
                }
                "--force" => force = true,
                "--verbose" | "-v" => verbose = true,
                "--help" | "-h" => return Err(usage("".into())),
                flag if flag.starts_with('-') => {
                    return Err(usage(format!("unknown option {flag}")))
                }
                other => positional.push(other.to_string()),
            }
        }

        let graph_source = |need: &str| -> Result<GraphSource, CliError> {
            match (&input, &generate) {
                (Some(path), None) => Ok(GraphSource::file(path)),
                (None, Some(spec)) => {
                    GraphSource::parse_generator(spec).map_err(|e| CliError::Usage(e.to_string()))
                }
                (Some(_), Some(_)) => Err(CliError::Usage(
                    "--input and --generate are mutually exclusive".into(),
                )),
                (None, None) => Err(CliError::Usage(format!(
                    "{need} needs a graph: --input <file> or --generate <spec>"
                ))),
            }
        };

        let request_opts = |need: &str| -> Result<RequestOpts, CliError> {
            let source = graph_source(need)?;
            let pattern = match (&pattern, &pattern_file) {
                (Some(_), Some(_)) => {
                    return Err(CliError::Usage(
                        "--pattern and --pattern-file are mutually exclusive".into(),
                    ))
                }
                (Some(p), None) => p.clone(),
                // File dialect: one edge per line (or comma-separated),
                // `#` comments — normalized to the inline spec grammar.
                (None, Some(path)) => {
                    let text = std::fs::read_to_string(path).map_err(|e| {
                        CliError::Run(format!("cannot read pattern file {}: {e}", path.display()))
                    })?;
                    let spec = subgraph_pattern::normalize_spec_text(&text);
                    if spec.is_empty() {
                        return Err(CliError::Run(format!(
                            "pattern file {} holds no pattern (only comments or blank lines)",
                            path.display()
                        )));
                    }
                    spec
                }
                (None, None) => {
                    return Err(CliError::Usage(format!(
                        "{need} needs --pattern <name> or --pattern-file <file>"
                    )))
                }
            };
            let strategy = match &strategy {
                None => None,
                Some(name) => Some(parse_strategy(name).ok_or_else(|| {
                    CliError::Usage(format!(
                        "unknown strategy {name:?} (one of: {})",
                        strategy_names().join(", ")
                    ))
                })?),
            };
            Ok(RequestOpts {
                source,
                pattern,
                reducers,
                threads,
                memory_budget,
                spill_dir: spill_dir.clone(),
                strategy,
            })
        };

        let no_positionals = |sub: &str| -> Result<(), CliError> {
            if positional.is_empty() {
                Ok(())
            } else {
                Err(CliError::Usage(format!(
                    "{sub} takes no positional arguments (got {positional:?})"
                )))
            }
        };
        // A flag a subcommand does not consume is an error, not a silent
        // no-op (`count --output x` must not pretend a file was written).
        let reject = |sub: &str, flag: &str, given: bool| -> Result<(), CliError> {
            if given {
                Err(CliError::Usage(format!("{sub} does not take {flag}")))
            } else {
                Ok(())
            }
        };
        let no_serve_flags = |sub: &str| -> Result<(), CliError> {
            for (flag, given) in [
                ("--listen", listen.is_some()),
                ("--unix", unix.is_some()),
                ("--plan-cache", plan_cache.is_some()),
                ("--pool", pool.is_some()),
                ("--timeout-secs", timeout_secs.is_some()),
            ] {
                reject(sub, flag, given)?;
            }
            Ok(())
        };

        match *sub {
            "enumerate" => {
                no_positionals("enumerate")?;
                no_serve_flags("enumerate")?;
                reject("enumerate", "--force", force)?;
                let format = match &format {
                    None => Format::Ndjson,
                    Some(name) => Format::parse(name).ok_or_else(|| {
                        usage(format!(
                            "unknown format {name:?} (one of: ndjson, csv, edges)"
                        ))
                    })?,
                };
                Ok(Command::Enumerate {
                    opts: request_opts("enumerate")?,
                    format,
                    output,
                    verbose,
                })
            }
            "count" => {
                no_positionals("count")?;
                no_serve_flags("count")?;
                reject("count", "--format", format.is_some())?;
                reject("count", "--output", output.is_some())?;
                reject("count", "--force", force)?;
                Ok(Command::Count {
                    opts: request_opts("count")?,
                    verbose,
                })
            }
            "explain" => {
                no_positionals("explain")?;
                no_serve_flags("explain")?;
                reject("explain", "--format", format.is_some())?;
                reject("explain", "--output", output.is_some())?;
                reject("explain", "--force", force)?;
                reject("explain", "--verbose", verbose)?;
                Ok(Command::Explain {
                    opts: request_opts("explain")?,
                })
            }
            "catalog" => {
                no_positionals("catalog")?;
                no_serve_flags("catalog")?;
                for (flag, given) in [
                    ("--input", input.is_some()),
                    ("--generate", generate.is_some()),
                    ("--pattern", pattern.is_some()),
                    ("--pattern-file", pattern_file.is_some()),
                    ("--format", format.is_some()),
                    ("--output", output.is_some()),
                    ("--reducers", reducers.is_some()),
                    ("--threads", threads.is_some()),
                    ("--memory-budget", memory_budget.is_some()),
                    ("--spill-dir", spill_dir.is_some()),
                    ("--strategy", strategy.is_some()),
                    ("--force", force),
                    ("--verbose", verbose),
                ] {
                    reject("catalog", flag, given)?;
                }
                Ok(Command::Catalog)
            }
            "serve" => {
                no_positionals("serve")?;
                reject("serve", "--pattern", pattern.is_some())?;
                reject("serve", "--pattern-file", pattern_file.is_some())?;
                reject("serve", "--format", format.is_some())?;
                reject("serve", "--output", output.is_some())?;
                reject("serve", "--reducers", reducers.is_some())?;
                reject("serve", "--strategy", strategy.is_some())?;
                reject("serve", "--force", force)?;
                if matches!(threads, Some(0)) {
                    return Err(usage("--threads needs a positive integer".into()));
                }
                #[cfg(not(unix))]
                if unix.is_some() {
                    return Err(usage("--unix is only available on unix platforms".into()));
                }
                Ok(Command::Serve {
                    source: graph_source("serve")?,
                    listen,
                    unix,
                    plan_cache: plan_cache.unwrap_or(64),
                    pool: pool.unwrap_or(4).max(1),
                    threads: threads.unwrap_or(1),
                    memory_budget: memory_budget.unwrap_or(0),
                    spill_dir,
                    timeout_secs: timeout_secs.unwrap_or(30),
                    verbose,
                })
            }
            "generate" => {
                no_serve_flags("generate")?;
                for (flag, given) in [
                    ("--pattern", pattern.is_some()),
                    ("--pattern-file", pattern_file.is_some()),
                    ("--format", format.is_some()),
                    ("--reducers", reducers.is_some()),
                    ("--threads", threads.is_some()),
                    ("--memory-budget", memory_budget.is_some()),
                    ("--spill-dir", spill_dir.is_some()),
                    ("--strategy", strategy.is_some()),
                    ("--force", force),
                    ("--verbose", verbose),
                ] {
                    reject("generate", flag, given)?;
                }
                let source = match (positional.as_slice(), &generate, &input) {
                    ([spec], None, None) => spec
                        .parse::<GraphSource>()
                        .map_err(|e| usage(e.to_string()))?,
                    ([], Some(spec), None) => GraphSource::parse_generator(spec)
                        .map_err(|e| usage(e.to_string()))?,
                    ([], None, Some(path)) => GraphSource::file(path),
                    _ => {
                        return Err(usage(
                            "generate takes exactly one spec: `subgraph generate gnp:1000,0.01 [-o out.txt]`"
                                .into(),
                        ))
                    }
                };
                Ok(Command::Generate { source, output })
            }
            "convert" => {
                no_serve_flags("convert")?;
                for (flag, given) in [
                    ("--pattern", pattern.is_some()),
                    ("--pattern-file", pattern_file.is_some()),
                    ("--format", format.is_some()),
                    ("--reducers", reducers.is_some()),
                    ("--threads", threads.is_some()),
                    ("--memory-budget", memory_budget.is_some()),
                    ("--spill-dir", spill_dir.is_some()),
                    ("--strategy", strategy.is_some()),
                ] {
                    reject("convert", flag, given)?;
                }
                let source = match (positional.as_slice(), &generate, &input) {
                    ([spec], None, None) => spec
                        .parse::<GraphSource>()
                        .map_err(|e| usage(e.to_string()))?,
                    ([], Some(spec), None) => GraphSource::parse_generator(spec)
                        .map_err(|e| usage(e.to_string()))?,
                    ([], None, Some(path)) => GraphSource::file(path),
                    _ => {
                        return Err(usage(
                            "convert takes exactly one input: `subgraph convert --input g.txt -o g.sgr`"
                                .into(),
                        ))
                    }
                };
                let output = output.ok_or_else(|| {
                    usage("convert needs --output <file>: the .sgr container is binary".into())
                })?;
                Ok(Command::Convert {
                    source,
                    output,
                    force,
                    verbose,
                })
            }
            other => Err(usage(format!("unknown subcommand {other:?}"))),
        }
    }
}

/// Every forceable strategy name, in tie-breaking order.
pub fn strategy_names() -> Vec<String> {
    StrategyKind::all().iter().map(|k| k.to_string()).collect()
}

/// Parses a byte count with an optional binary suffix: `65536`, `64K`,
/// `512M`, `2G` (case-insensitive; K/M/G are 2^10/2^20/2^30). `0` means
/// unbounded for `--memory-budget`.
pub fn parse_size(text: &str) -> Option<usize> {
    let text = text.trim();
    let (digits, multiplier) = match text.chars().last()? {
        'k' | 'K' => (&text[..text.len() - 1], 1usize << 10),
        'm' | 'M' => (&text[..text.len() - 1], 1 << 20),
        'g' | 'G' => (&text[..text.len() - 1], 1 << 30),
        _ => (text, 1),
    };
    digits.parse::<usize>().ok()?.checked_mul(multiplier)
}

/// Resolves a strategy name as printed by [`StrategyKind`]'s `Display`.
pub fn parse_strategy(name: &str) -> Option<StrategyKind> {
    StrategyKind::all()
        .into_iter()
        .find(|k| k.to_string() == name)
}

/// What a streaming run produced, for `--verbose` reporting and the parity
/// checks.
#[derive(Debug)]
pub struct StreamSummary {
    /// Instances serialized to the writer.
    pub written: usize,
    /// The engine's run report (streamed mode: count + metrics, no
    /// instances).
    pub report: RunReport,
    /// Input hygiene counters, when the graph came from an edge-list file.
    pub read_stats: Option<ReadStats>,
}

/// Runs `enumerate` against an arbitrary writer: plans the request, streams
/// every instance through the chosen serializing sink (no `Vec<Instance>`
/// anywhere), flushes, and returns the summary. This is the function both the
/// binary and the parity tests call.
pub fn enumerate_to_writer<W: Write + Send>(
    opts: &RequestOpts,
    format: Format,
    writer: W,
) -> Result<StreamSummary, CliError> {
    let (graph, read_stats) = opts.load_graph()?;
    let plan = opts.request(&graph)?.plan()?;
    let mut summary = stream_plan(&plan, format, writer)?;
    summary.read_stats = read_stats;
    Ok(summary)
}

/// Runs `enumerate` into a file. The input graph is loaded and the request
/// fully planned *before* the file is created, so a bad input or pattern
/// never truncates an existing output file; errors from the write phase name
/// the file.
pub fn enumerate_to_file(
    opts: &RequestOpts,
    format: Format,
    path: &std::path::Path,
) -> Result<StreamSummary, CliError> {
    let (graph, read_stats) = opts.load_graph()?;
    let plan = opts.request(&graph)?.plan()?;
    let file = std::fs::File::create(path)
        .map_err(|e| CliError::Run(format!("cannot create {}: {e}", path.display())))?;
    let mut summary = stream_plan(&plan, format, io::BufWriter::new(file))
        .map_err(|e| name_output_path(e, path))?;
    summary.read_stats = read_stats;
    Ok(summary)
}

/// Streams a planned enumeration through the serializing sink for `format`.
fn stream_plan<W: Write + Send>(
    plan: &subgraph_core::ExecutionPlan<'_>,
    format: Format,
    writer: W,
) -> Result<StreamSummary, CliError> {
    let (written, report) = match format {
        Format::Ndjson => {
            let mut sink = NdjsonSink::new(writer);
            let report = plan.run_with_sink(&mut sink);
            (sink.finish()?, report)
        }
        Format::Csv => {
            let mut sink = CsvSink::new(writer);
            let report = plan.run_with_sink(&mut sink);
            (sink.finish()?, report)
        }
        Format::EdgeList => {
            let mut sink = EdgeListSink::new(writer);
            let report = plan.run_with_sink(&mut sink);
            (sink.finish()?, report)
        }
    };
    debug_assert_eq!(written, report.count());
    Ok(StreamSummary {
        written,
        report,
        read_stats: None,
    })
}

/// Runs `count`: the zero-allocation [`subgraph_core::CountSink`] path.
/// Returns the run report plus input hygiene counters for file sources.
pub fn count_instances(opts: &RequestOpts) -> Result<(RunReport, Option<ReadStats>), CliError> {
    let (graph, read_stats) = opts.load_graph()?;
    let request = opts.request(&graph)?;
    Ok((request.plan()?.count(), read_stats))
}

/// Runs `explain`: plans without executing and returns the cost table.
pub fn explain_request(opts: &RequestOpts) -> Result<String, CliError> {
    let (graph, _) = opts.load_graph()?;
    let request = opts.request(&graph)?;
    Ok(request.plan()?.explain())
}

/// Renders the `catalog` table.
pub fn catalog_table() -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<22} {:>5} {:>5} {:>6} {:>6}  {}\n",
        "pattern", "nodes", "edges", "|Aut|", "CQs", "description"
    ));
    for entry in catalog::entries() {
        out.push_str(&format!(
            "{:<22} {:>5} {:>5} {:>6} {:>6}  {}\n",
            entry.name,
            entry.sample.num_nodes(),
            entry.sample.num_edges(),
            entry.automorphisms(),
            entry.order_classes(),
            entry.description,
        ));
    }
    out.push_str(
        "\nfamilies: cN/cycleN, kN/cliqueN, starN, pathN, hypercubeD (any size up to 16 nodes)\n",
    );
    out
}

/// Renders the input-hygiene line for `--verbose` feedback (empty for
/// generator sources, which have no file to clean).
fn render_hygiene(read_stats: &Option<ReadStats>) -> String {
    match read_stats {
        Some(rs) => format!("input hygiene: {rs}\n"),
        None => String::new(),
    }
}

/// Attaches `path` to a runtime error so write failures name the file being
/// written (broken pipes stay silent).
fn name_output_path(e: CliError, path: &std::path::Path) -> CliError {
    match e {
        CliError::Run(msg) => CliError::Run(format!("writing {}: {msg}", path.display())),
        other => other,
    }
}

/// Executes a parsed command, writing primary output to `stdout` (the real
/// stdout in the binary, a buffer in tests). `enumerate`/`generate` honour
/// `--output` by writing the payload to the file instead; everything the user
/// reads as *feedback* (verbose reports) goes to stderr in the binary shim,
/// returned here as the second tuple element. The writer is `Send` so
/// `enumerate` can stream into it directly (the engine's sinks deliver from
/// worker threads).
pub fn run(cmd: &Command, stdout: &mut (dyn Write + Send)) -> Result<Option<String>, CliError> {
    match cmd {
        Command::Catalog => {
            stdout.write_all(catalog_table().as_bytes())?;
            Ok(None)
        }
        Command::Explain { opts } => {
            stdout.write_all(explain_request(opts)?.as_bytes())?;
            Ok(None)
        }
        Command::Count { opts, verbose } => {
            let (report, read_stats) = count_instances(opts)?;
            writeln!(stdout, "{}", report.count())?;
            Ok(verbose.then(|| format!("{}{}", render_hygiene(&read_stats), report.render())))
        }
        Command::Enumerate {
            opts,
            format,
            output,
            verbose,
        } => {
            let summary = match output {
                Some(path) => enumerate_to_file(opts, *format, path)?,
                None => enumerate_to_writer(opts, *format, io::BufWriter::new(&mut *stdout))?,
            };
            Ok(verbose.then(|| {
                format!(
                    "{}{} instances written\n{}",
                    render_hygiene(&summary.read_stats),
                    summary.written,
                    summary.report.render()
                )
            }))
        }
        Command::Serve {
            source,
            listen,
            unix,
            plan_cache,
            pool,
            threads,
            memory_budget,
            spill_dir,
            timeout_secs,
            verbose,
        } => {
            // Fail fast on an unusable spill dir — at startup, not inside
            // the first budgeted query.
            {
                let mut probe = EngineConfig::default().memory_budget(*memory_budget);
                if let Some(dir) = spill_dir {
                    probe = probe.spill_dir(dir.clone());
                }
                probe.validate_spill_dir().map_err(CliError::Run)?;
            }
            let store = GraphStore::open(source)?;
            let engine = QueryEngine::new(store, *plan_cache, *threads)
                .with_memory_budget(*memory_budget, spill_dir.clone());
            let io_timeout = (*timeout_secs > 0).then(|| Duration::from_secs(*timeout_secs));
            let config = ServerConfig {
                listen: Some(
                    listen
                        .clone()
                        .unwrap_or_else(|| "127.0.0.1:7878".to_string()),
                ),
                #[cfg(unix)]
                unix_path: unix.clone(),
                pool: *pool,
                cache_capacity: *plan_cache,
                threads_per_query: *threads,
                memory_budget: *memory_budget,
                spill_dir: spill_dir.clone(),
                read_timeout: io_timeout,
                write_timeout: io_timeout,
            };
            #[cfg(not(unix))]
            let _ = unix;
            let handle = subgraph_serve::spawn(engine, &config)
                .map_err(|e| CliError::Run(format!("cannot start server: {e}")))?;
            writeln!(
                stdout,
                "{}",
                subgraph_serve::server::startup_banner(handle.engine(), &config, handle.tcp_addr())
            )?;
            if *verbose {
                writeln!(
                    stdout,
                    "stats fingerprint {:016x}; warm queries resume cached plans with zero re-planning",
                    handle.engine().store().fingerprint()
                )?;
            }
            stdout.flush()?;
            // Blocks until SIGINT/SIGTERM, then drains in-flight queries.
            let stop = subgraph_serve::install_signal_handlers();
            handle.run_until(stop);
            Ok(None)
        }
        Command::Generate { source, output } => {
            let (graph, stats) = source.load_with_stats()?;
            match output {
                Some(path) => {
                    let file = std::fs::File::create(path).map_err(|e| {
                        CliError::Run(format!("cannot create {}: {e}", path.display()))
                    })?;
                    let mut writer = io::BufWriter::new(file);
                    write_edge_list(&graph, &mut writer)
                        .and_then(|()| writer.flush())
                        .map_err(|e| name_output_path(CliError::from(e), path))?;
                }
                None => {
                    let mut writer = io::BufWriter::new(&mut *stdout);
                    write_edge_list(&graph, &mut writer)?;
                    writer.flush()?;
                }
            }
            let mut note = format!(
                "wrote {} nodes, {} edges from {source}",
                graph.num_nodes(),
                graph.num_edges()
            );
            if let Some(stats) = stats {
                note.push_str(&format!(
                    " (cleaned {} duplicate edges, {} self-loops)",
                    stats.duplicate_edges, stats.self_loops
                ));
            }
            Ok(Some(note))
        }
        Command::Convert {
            source,
            output,
            force,
            verbose,
        } => {
            // Refuse to clobber an existing file unless asked — checked
            // before the (possibly expensive) load, so the refusal is
            // instant.
            if !force && output.exists() {
                return Err(CliError::Run(format!(
                    "{} already exists (pass --force to overwrite)",
                    output.display()
                )));
            }
            let (graph, stats) = source.load_with_stats()?;
            // SgrError already names the file it was writing.
            write_sgr_file(&graph, output).map_err(|e| CliError::Run(e.to_string()))?;
            let bytes = std::fs::metadata(output).map(|m| m.len()).unwrap_or(0);
            let mut note = format!(
                "converted {source}: {} nodes, {} edges -> {} ({bytes} bytes, mmap-loadable)",
                graph.num_nodes(),
                graph.num_edges(),
                output.display()
            );
            if *verbose {
                if let Some(stats) = stats {
                    note.push_str(&format!("\ninput hygiene: {stats}"));
                }
            }
            Ok(Some(note))
        }
    }
}

/// The whole binary in one callable: parse, run, report. Returns the process
/// exit code. The binary's `main` is a one-line wrapper, so tests (and the
/// bench harness) can exercise exactly what the executable does.
pub fn run_main(args: &[&str]) -> i32 {
    let cmd = match Command::parse(args) {
        Ok(cmd) => cmd,
        Err(CliError::Usage(msg)) => {
            if msg.is_empty() {
                // --help: usage on stdout, success.
                print!("{USAGE}");
                return 0;
            }
            eprintln!("error: {msg}\n\n{USAGE}");
            return 2;
        }
        Err(e) => return report_error(e),
    };

    let mut stdout = io::stdout();
    match run(&cmd, &mut stdout) {
        Ok(feedback) => {
            if let Some(text) = feedback {
                eprint!("{text}");
                if !text.ends_with('\n') {
                    eprintln!();
                }
            }
            0
        }
        Err(e) => report_error(e),
    }
}

/// Prints a runtime error to stderr (silently for [`CliError::BrokenPipe`])
/// and returns the exit code.
fn report_error(e: CliError) -> i32 {
    if !matches!(e, CliError::BrokenPipe) {
        eprintln!("error: {e}");
    }
    e.exit_code()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Command {
        Command::parse(args).unwrap()
    }

    #[test]
    fn parses_enumerate_with_every_flag() {
        let cmd = parse(&[
            "enumerate",
            "--generate",
            "gnm:50,120,9",
            "--pattern",
            "triangle",
            "--format",
            "csv",
            "--output",
            "/tmp/out.csv",
            "--reducers",
            "27",
            "--threads",
            "2",
            "--strategy",
            "multiway-triangles",
            "--verbose",
        ]);
        match cmd {
            Command::Enumerate {
                opts,
                format,
                output,
                verbose,
            } => {
                assert_eq!(opts.pattern, "triangle");
                assert_eq!(opts.reducers, Some(27));
                assert_eq!(opts.threads, Some(2));
                assert_eq!(opts.strategy, Some(StrategyKind::MultiwayTriangles));
                assert_eq!(format, Format::Csv);
                assert_eq!(output, Some(PathBuf::from("/tmp/out.csv")));
                assert!(verbose);
            }
            other => panic!("expected Enumerate, got {other:?}"),
        }
    }

    #[test]
    fn usage_errors_are_specific() {
        let err = |args: &[&str]| match Command::parse(args) {
            Err(CliError::Usage(msg)) => msg,
            other => panic!("expected usage error, got {other:?}"),
        };
        assert!(err(&["count", "--pattern", "triangle"]).contains("--input"));
        assert!(err(&["count", "--generate", "gnp:9,0.5", "--input", "x"]).contains("mutually"));
        assert!(err(&["enumerate", "--generate", "gnp:9,0.5"]).contains("--pattern"));
        assert!(
            err(&["count", "--generate", "nope:1", "--pattern", "triangle"])
                .contains("unknown generator")
        );
        assert!(err(&["frobnicate"]).contains("unknown subcommand"));
        assert!(err(&["count", "--bogus"]).contains("unknown option"));
        assert!(err(&[
            "enumerate",
            "--generate",
            "gnp:9,0.5",
            "--pattern",
            "triangle",
            "--format",
            "xml"
        ])
        .contains("unknown format"));
        assert!(err(&[
            "count",
            "--generate",
            "gnp:9,0.5",
            "--pattern",
            "triangle",
            "--strategy",
            "quantum"
        ])
        .contains("unknown strategy"));
    }

    #[test]
    fn count_and_enumerate_agree_on_a_generated_graph() {
        let opts = RequestOpts {
            source: "gnp:60,0.1,7".parse().unwrap(),
            pattern: "triangle".to_string(),
            reducers: Some(16),
            threads: Some(2),
            memory_budget: None,
            spill_dir: None,
            strategy: None,
        };
        let (report, _) = count_instances(&opts).unwrap();
        let mut buf = Vec::new();
        let summary = enumerate_to_writer(&opts, Format::Ndjson, &mut buf).unwrap();
        assert_eq!(summary.written, report.count());
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), report.count());
        assert!(text.lines().all(|l| l.starts_with("{\"nodes\":[")));
    }

    #[test]
    fn explain_mentions_the_pattern_and_candidates() {
        let opts = RequestOpts {
            source: "gnm:60,300,9".parse().unwrap(),
            pattern: "lollipop".to_string(),
            reducers: Some(750),
            threads: None,
            memory_budget: None,
            spill_dir: None,
            strategy: None,
        };
        let text = explain_request(&opts).unwrap();
        assert!(text.contains("\"lollipop\""));
        assert!(text.contains("candidates (cheapest first):"));
        assert!(text.contains("bucket-oriented"));
    }

    #[test]
    fn catalog_table_lists_every_entry() {
        let table = catalog_table();
        for entry in catalog::entries() {
            assert!(table.contains(entry.name), "missing {}", entry.name);
        }
        assert!(table.contains("|Aut|"));
    }

    #[test]
    fn run_count_prints_one_number() {
        let cmd = parse(&[
            "count",
            "--generate",
            "gnp:60,0.1,7",
            "--pattern",
            "triangle",
        ]);
        let mut out = Vec::new();
        let feedback = run(&cmd, &mut out).unwrap();
        assert!(feedback.is_none());
        let text = String::from_utf8(out).unwrap();
        let _: usize = text.trim().parse().expect("count output is a number");
    }

    #[test]
    fn unknown_pattern_error_points_at_the_catalog() {
        let opts = RequestOpts {
            source: "gnp:10,0.5,1".parse().unwrap(),
            pattern: "dodecahedron".to_string(),
            reducers: None,
            threads: None,
            memory_budget: None,
            spill_dir: None,
            strategy: None,
        };
        let err = count_instances(&opts).unwrap_err();
        assert!(err.to_string().contains("subgraph catalog"));
        assert_eq!(err.exit_code(), 1);
    }

    #[test]
    fn missing_input_file_error_names_the_path() {
        let opts = RequestOpts {
            source: GraphSource::file("/no/such/snapshot.txt"),
            pattern: "triangle".to_string(),
            reducers: None,
            threads: None,
            memory_budget: None,
            spill_dir: None,
            strategy: None,
        };
        let err = count_instances(&opts).unwrap_err();
        assert!(err.to_string().contains("/no/such/snapshot.txt"));
    }

    #[test]
    fn inapplicable_flags_are_rejected_not_ignored() {
        let err = |args: &[&str]| match Command::parse(args) {
            Err(CliError::Usage(msg)) => msg,
            other => panic!("expected usage error, got {other:?}"),
        };
        let base = ["count", "--generate", "gnp:9,0.5", "--pattern", "triangle"];
        let with = |extra: &[&'static str]| -> Vec<&'static str> { [&base[..], extra].concat() };
        assert!(err(&with(&["--output", "x.txt"])).contains("does not take --output"));
        assert!(err(&with(&["--format", "csv"])).contains("does not take --format"));
        assert!(err(&["catalog", "--pattern", "triangle"]).contains("does not take --pattern"));
        assert!(err(&[
            "explain",
            "--generate",
            "gnp:9,0.5",
            "--pattern",
            "triangle",
            "-v"
        ])
        .contains("does not take --verbose"));
        assert!(
            err(&["generate", "gnp:9,0.5", "--threads", "2"]).contains("does not take --threads")
        );
    }

    #[test]
    fn failed_enumerate_never_truncates_an_existing_output_file() {
        let dir = std::env::temp_dir().join("subgraph-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("precious.ndjson");
        std::fs::write(&out, "previous results\n").unwrap();

        // Unreadable input graph.
        let bad_input = RequestOpts {
            source: GraphSource::file("/no/such/graph.txt"),
            pattern: "triangle".to_string(),
            reducers: None,
            threads: None,
            memory_budget: None,
            spill_dir: None,
            strategy: None,
        };
        let err = enumerate_to_file(&bad_input, Format::Ndjson, &out).unwrap_err();
        assert!(err.to_string().contains("/no/such/graph.txt"));
        assert!(
            !err.to_string().contains("precious.ndjson"),
            "a load failure must not be labelled as a write failure: {err}"
        );

        // Unknown pattern.
        let bad_pattern = RequestOpts {
            source: "gnp:10,0.5,1".parse().unwrap(),
            pattern: "dodecahedron".to_string(),
            ..bad_input
        };
        enumerate_to_file(&bad_pattern, Format::Ndjson, &out).unwrap_err();

        assert_eq!(
            std::fs::read_to_string(&out).unwrap(),
            "previous results\n",
            "failed runs must leave the output file untouched"
        );
        std::fs::remove_file(&out).ok();
    }

    #[test]
    fn parses_serve_with_every_flag() {
        let cmd = parse(&[
            "serve",
            "--generate",
            "gnm:50,120,9",
            "--listen",
            "127.0.0.1:0",
            "--unix",
            "/tmp/subgraph.sock",
            "--plan-cache",
            "128",
            "--pool",
            "8",
            "--threads",
            "2",
            "--timeout-secs",
            "10",
            "--verbose",
        ]);
        match cmd {
            Command::Serve {
                listen,
                unix,
                plan_cache,
                pool,
                threads,
                timeout_secs,
                verbose,
                ..
            } => {
                assert_eq!(listen.as_deref(), Some("127.0.0.1:0"));
                assert_eq!(unix, Some(PathBuf::from("/tmp/subgraph.sock")));
                assert_eq!(plan_cache, 128);
                assert_eq!(pool, 8);
                assert_eq!(threads, 2);
                assert_eq!(timeout_secs, 10);
                assert!(verbose);
            }
            other => panic!("expected Serve, got {other:?}"),
        }
        // Defaults.
        match parse(&["serve", "--generate", "gnm:50,120,9"]) {
            Command::Serve {
                listen,
                plan_cache,
                pool,
                threads,
                timeout_secs,
                ..
            } => {
                assert!(listen.is_none());
                assert_eq!(plan_cache, 64);
                assert_eq!(pool, 4);
                assert_eq!(threads, 1);
                assert_eq!(timeout_secs, 30);
            }
            other => panic!("expected Serve, got {other:?}"),
        }
    }

    #[test]
    fn serve_and_one_shot_flags_stay_separated() {
        let err = |args: &[&str]| match Command::parse(args) {
            Err(CliError::Usage(msg)) => msg,
            other => panic!("expected usage error, got {other:?}"),
        };
        assert!(
            err(&["serve", "--generate", "gnm:9,20,1", "--pattern", "triangle"])
                .contains("does not take --pattern")
        );
        assert!(err(&[
            "serve",
            "--generate",
            "gnm:9,20,1",
            "--strategy",
            "cq-oriented"
        ])
        .contains("does not take --strategy"));
        assert!(err(&["serve"]).contains("needs a graph"));
        assert!(err(&[
            "count",
            "--generate",
            "gnm:9,20,1",
            "--pattern",
            "triangle",
            "--listen",
            "127.0.0.1:0"
        ])
        .contains("does not take --listen"));
        assert!(err(&[
            "enumerate",
            "--generate",
            "gnm:9,20,1",
            "--pattern",
            "t",
            "--pool",
            "2"
        ])
        .contains("does not take --pool"));
        assert!(err(&[
            "count",
            "--generate",
            "gnm:9,20,1",
            "--pattern",
            "t",
            "--timeout-secs",
            "5"
        ])
        .contains("does not take --timeout-secs"));
    }

    #[test]
    fn inline_pattern_specs_count_like_catalog_names() {
        let by_name = RequestOpts {
            source: "gnp:60,0.1,7".parse().unwrap(),
            pattern: "triangle".to_string(),
            reducers: Some(16),
            threads: Some(1),
            memory_budget: None,
            spill_dir: None,
            strategy: None,
        };
        let by_spec = RequestOpts {
            pattern: "a-b,b-c,c-a".to_string(),
            ..by_name.clone()
        };
        assert_eq!(
            count_instances(&by_name).unwrap().0.count(),
            count_instances(&by_spec).unwrap().0.count(),
        );
        // Bad specs carry the spec-level reason.
        let bad = RequestOpts {
            pattern: "a-a".to_string(),
            ..by_name
        };
        let err = count_instances(&bad).unwrap_err();
        assert!(err.to_string().contains("self-loop"), "{err}");
    }

    #[test]
    fn verbose_count_reports_input_hygiene() {
        let dir = std::env::temp_dir().join("subgraph-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dirty-hygiene.txt");
        std::fs::write(&path, "0 1\r\n1 0\n\n1 2\n0 2\n").unwrap();
        let cmd = parse(&[
            "count",
            "--input",
            path.to_str().unwrap(),
            "--pattern",
            "triangle",
            "--verbose",
        ]);
        let mut out = Vec::new();
        let feedback = run(&cmd, &mut out).unwrap().expect("verbose feedback");
        assert!(feedback.contains("input hygiene:"), "{feedback}");
        assert!(feedback.contains("duplicates 1 collapsed"), "{feedback}");
        assert!(feedback.contains("blank lines 1"), "{feedback}");
        assert!(feedback.contains("crlf lines 1"), "{feedback}");
        assert_eq!(String::from_utf8(out).unwrap().trim(), "1");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn convert_writes_an_sgr_file_that_counts_identically() {
        let dir = std::env::temp_dir().join("subgraph-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let text = dir.join("convert-src.txt");
        let binary = dir.join("convert-out.sgr");

        let mut out = Vec::new();
        run(
            &parse(&[
                "generate",
                "gnp:90,0.07,11",
                "--output",
                text.to_str().unwrap(),
            ]),
            &mut out,
        )
        .unwrap();
        let note = run(
            &parse(&[
                "convert",
                "--input",
                text.to_str().unwrap(),
                "--output",
                binary.to_str().unwrap(),
            ]),
            &mut out,
        )
        .unwrap()
        .expect("convert reports what it wrote");
        assert!(note.contains("mmap-loadable"), "{note}");

        // The binary file starts with the container magic, not text.
        let head = std::fs::read(&binary).unwrap();
        assert_eq!(&head[..8], b"SGRAPH\r\n");

        // Count parity: text source vs .sgr source.
        let from = |path: &std::path::Path| RequestOpts {
            source: GraphSource::file(path),
            pattern: "triangle".to_string(),
            reducers: Some(16),
            threads: Some(1),
            memory_budget: None,
            spill_dir: None,
            strategy: None,
        };
        assert_eq!(
            count_instances(&from(&text)).unwrap().0.count(),
            count_instances(&from(&binary)).unwrap().0.count(),
        );
        std::fs::remove_file(&text).ok();
        std::fs::remove_file(&binary).ok();
    }

    #[test]
    fn convert_usage_is_strict() {
        let err = |args: &[&str]| match Command::parse(args) {
            Err(CliError::Usage(msg)) => msg,
            other => panic!("expected usage error, got {other:?}"),
        };
        assert!(err(&["convert", "--generate", "gnp:9,0.5"]).contains("--output"));
        assert!(err(&["convert"]).contains("exactly one input"));
        assert!(err(&[
            "convert",
            "--generate",
            "gnp:9,0.5",
            "-o",
            "x.sgr",
            "--pattern",
            "triangle"
        ])
        .contains("does not take --pattern"));
    }

    #[test]
    fn parse_size_understands_binary_suffixes() {
        assert_eq!(parse_size("0"), Some(0));
        assert_eq!(parse_size("4096"), Some(4096));
        assert_eq!(parse_size("64K"), Some(64 << 10));
        assert_eq!(parse_size("64k"), Some(64 << 10));
        assert_eq!(parse_size("2M"), Some(2 << 20));
        assert_eq!(parse_size("2G"), Some(2 << 30));
        assert_eq!(parse_size(""), None);
        assert_eq!(parse_size("K"), None);
        assert_eq!(parse_size("12T"), None);
        assert_eq!(parse_size("-1"), None);
        assert_eq!(parse_size("999999999999999999999G"), None);
    }

    #[test]
    fn memory_budget_and_spill_dir_flags_parse() {
        let cmd = parse(&[
            "count",
            "--generate",
            "gnp:9,0.5",
            "--pattern",
            "triangle",
            "--memory-budget",
            "64K",
            "--spill-dir",
            "/tmp/spill-here",
        ]);
        match cmd {
            Command::Count { opts, .. } => {
                assert_eq!(opts.memory_budget, Some(64 << 10));
                assert_eq!(opts.spill_dir, Some(PathBuf::from("/tmp/spill-here")));
            }
            other => panic!("expected Count, got {other:?}"),
        }
        let cmd = parse(&["serve", "--generate", "gnp:9,0.5", "--memory-budget", "1G"]);
        match cmd {
            Command::Serve {
                memory_budget,
                spill_dir,
                ..
            } => {
                assert_eq!(memory_budget, 1 << 30);
                assert_eq!(spill_dir, None);
            }
            other => panic!("expected Serve, got {other:?}"),
        }
    }

    #[test]
    fn spill_flags_are_rejected_where_inapplicable() {
        let err = |args: &[&str]| match Command::parse(args) {
            Err(CliError::Usage(msg)) => msg,
            other => panic!("expected usage error, got {other:?}"),
        };
        assert!(
            err(&["catalog", "--memory-budget", "1M"]).contains("does not take --memory-budget")
        );
        assert!(err(&["generate", "gnp:9,0.5", "--spill-dir", "/tmp"])
            .contains("does not take --spill-dir"));
        assert!(err(&[
            "convert",
            "--generate",
            "gnp:9,0.5",
            "-o",
            "x.sgr",
            "--memory-budget",
            "1M"
        ])
        .contains("does not take --memory-budget"));
        assert!(err(&[
            "count",
            "--generate",
            "gnp:9,0.5",
            "--pattern",
            "triangle",
            "--force"
        ])
        .contains("does not take --force"));
        assert!(err(&[
            "count",
            "--generate",
            "gnp:9,0.5",
            "--pattern",
            "triangle",
            "--memory-budget",
            "lots"
        ])
        .contains("byte count"));
    }

    #[test]
    fn unwritable_spill_dir_fails_fast() {
        // A spill dir nested under a regular file can never be created: the
        // request must fail before any round runs, naming the dir.
        let dir = std::env::temp_dir().join("subgraph-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let blocker = dir.join("not-a-dir.txt");
        std::fs::write(&blocker, "x").unwrap();
        let opts = RequestOpts {
            source: "gnp:30,0.2,5".parse().unwrap(),
            pattern: "triangle".to_string(),
            reducers: None,
            threads: Some(2),
            memory_budget: Some(64 << 10),
            spill_dir: Some(blocker.join("spill")),
            strategy: None,
        };
        let err = count_instances(&opts).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("spill"), "{msg}");
        assert!(msg.contains("not-a-dir.txt"), "{msg}");
        std::fs::remove_file(&blocker).ok();
    }

    #[test]
    fn a_budgeted_count_matches_the_unbudgeted_answer() {
        let base = RequestOpts {
            source: "gnm:120,1500,13".parse().unwrap(),
            pattern: "triangle".to_string(),
            reducers: Some(220),
            threads: Some(2),
            memory_budget: None,
            spill_dir: None,
            strategy: Some(StrategyKind::BucketOrderedTriangles),
        };
        let budgeted = RequestOpts {
            memory_budget: Some(64 << 10),
            ..base.clone()
        };
        let (plain, _) = count_instances(&base).unwrap();
        let (spilled, _) = count_instances(&budgeted).unwrap();
        assert_eq!(plain.count(), spilled.count());
        let spill_bytes = |r: &RunReport| r.metrics.as_ref().map_or(0, |m| m.spilled_bytes);
        assert_eq!(spill_bytes(&plain), 0);
    }

    #[test]
    fn convert_refuses_to_overwrite_without_force() {
        let dir = std::env::temp_dir().join("subgraph-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let out_path = dir.join("convert-noclobber.sgr");
        std::fs::write(&out_path, "precious bytes").unwrap();

        let mut out = Vec::new();
        let err = run(
            &parse(&[
                "convert",
                "--generate",
                "gnp:20,0.3,2",
                "--output",
                out_path.to_str().unwrap(),
            ]),
            &mut out,
        )
        .unwrap_err();
        assert!(err.to_string().contains("already exists"), "{err}");
        assert!(err.to_string().contains("--force"), "{err}");
        // The original file is untouched.
        assert_eq!(std::fs::read(&out_path).unwrap(), b"precious bytes");

        // --force overwrites it.
        let note = run(
            &parse(&[
                "convert",
                "--generate",
                "gnp:20,0.3,2",
                "--output",
                out_path.to_str().unwrap(),
                "--force",
            ]),
            &mut out,
        )
        .unwrap()
        .expect("convert reports what it wrote");
        assert!(note.contains("mmap-loadable"), "{note}");
        assert_eq!(&std::fs::read(&out_path).unwrap()[..8], b"SGRAPH\r\n");
        std::fs::remove_file(&out_path).ok();
    }

    #[test]
    fn graph_flag_is_an_input_alias() {
        let dir = std::env::temp_dir().join("subgraph-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("alias.txt");
        std::fs::write(&path, "0 1\n1 2\n0 2\n").unwrap();
        let cmd = parse(&[
            "count",
            "--graph",
            path.to_str().unwrap(),
            "--pattern",
            "triangle",
        ]);
        let mut out = Vec::new();
        run(&cmd, &mut out).unwrap();
        assert_eq!(String::from_utf8(out).unwrap().trim(), "1");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn pattern_files_resolve_like_inline_specs() {
        let dir = std::env::temp_dir().join("subgraph-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let pat = dir.join("triangle.pat");
        std::fs::write(&pat, "# a triangle\na-b\nb-c # one edge per line\nc-a\n").unwrap();

        let inline = parse(&[
            "count",
            "--generate",
            "gnp:60,0.1,7",
            "--pattern",
            "a-b,b-c,c-a",
        ]);
        let from_file = parse(&[
            "count",
            "--generate",
            "gnp:60,0.1,7",
            "--pattern-file",
            pat.to_str().unwrap(),
        ]);
        let count_of = |cmd: &Command| {
            let mut out = Vec::new();
            run(cmd, &mut out).unwrap();
            String::from_utf8(out)
                .unwrap()
                .trim()
                .parse::<usize>()
                .unwrap()
        };
        assert_eq!(count_of(&inline), count_of(&from_file));

        // Both flags at once is a usage error; an empty file is a run error
        // naming the file; a missing file is a run error too.
        match Command::parse(&[
            "count",
            "--generate",
            "gnp:9,0.5",
            "--pattern",
            "triangle",
            "--pattern-file",
            pat.to_str().unwrap(),
        ]) {
            Err(CliError::Usage(msg)) => assert!(msg.contains("mutually exclusive"), "{msg}"),
            other => panic!("expected usage error, got {other:?}"),
        }
        let empty = dir.join("empty.pat");
        std::fs::write(&empty, "# nothing here\n").unwrap();
        match Command::parse(&[
            "count",
            "--generate",
            "gnp:9,0.5",
            "--pattern-file",
            empty.to_str().unwrap(),
        ]) {
            Err(CliError::Run(msg)) => assert!(msg.contains("empty.pat"), "{msg}"),
            other => panic!("expected run error, got {other:?}"),
        }
        match Command::parse(&[
            "count",
            "--generate",
            "gnp:9,0.5",
            "--pattern-file",
            "/no/such/pattern.pat",
        ]) {
            Err(CliError::Run(msg)) => assert!(msg.contains("/no/such/pattern.pat"), "{msg}"),
            other => panic!("expected run error, got {other:?}"),
        }
        std::fs::remove_file(&pat).ok();
        std::fs::remove_file(&empty).ok();
    }

    #[test]
    fn serve_rejects_pattern_files_too() {
        match Command::parse(&[
            "serve",
            "--generate",
            "gnm:9,20,1",
            "--pattern-file",
            "x.pat",
        ]) {
            Err(CliError::Usage(msg)) => assert!(msg.contains("does not take --pattern-file")),
            other => panic!("expected usage error, got {other:?}"),
        }
    }

    #[test]
    fn generate_then_count_round_trips_through_a_file() {
        let dir = std::env::temp_dir().join("subgraph-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("generated.txt");
        let gen = parse(&[
            "generate",
            "gnp:80,0.08,3",
            "--output",
            path.to_str().unwrap(),
        ]);
        let mut out = Vec::new();
        run(&gen, &mut out).unwrap();

        let from_file = RequestOpts {
            source: GraphSource::file(&path),
            pattern: "triangle".to_string(),
            reducers: Some(16),
            threads: Some(1),
            memory_budget: None,
            spill_dir: None,
            strategy: None,
        };
        let from_generator = RequestOpts {
            source: "gnp:80,0.08,3".parse().unwrap(),
            ..from_file.clone()
        };
        assert_eq!(
            count_instances(&from_file).unwrap().0.count(),
            count_instances(&from_generator).unwrap().0.count(),
        );
        std::fs::remove_file(&path).ok();
    }
}
