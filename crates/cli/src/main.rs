//! The `subgraph` binary: a one-line shim over [`subgraph_cli::run_main`] so
//! the tests and the bench harness drive exactly the code the executable
//! runs.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let args: Vec<&str> = args.iter().map(String::as_str).collect();
    std::process::exit(subgraph_cli::run_main(&args));
}
