//! Property-based integration tests of the paper's central invariant: every
//! algorithm produces each instance of the sample graph exactly once, for any
//! sample graph, data graph, bucket count and node order.

use proptest::prelude::*;
use subgraph_mr::prelude::*;

fn patterns() -> impl Strategy<Value = SampleGraph> {
    prop_oneof![
        Just(catalog::triangle()),
        Just(catalog::square()),
        Just(catalog::lollipop()),
        Just(catalog::cycle(5)),
        Just(catalog::star(4)),
        Just(catalog::path(4)),
        Just(catalog::k4()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn bucket_oriented_map_reduce_is_exactly_once(
        sample in patterns(),
        n in 12usize..28,
        density in 2usize..5,
        buckets in 1usize..5,
        seed in 0u64..1000,
    ) {
        let m = n * density;
        let graph = generators::gnm(n, m.min(n * (n - 1) / 2), seed);
        let run = bucket_oriented_enumerate(&sample, &graph, buckets, &EngineConfig::serial());
        let oracle = enumerate_generic(&sample, &graph);
        prop_assert_eq!(run.count(), oracle.count());
        prop_assert_eq!(run.duplicates(), 0);
    }

    #[test]
    fn variable_oriented_map_reduce_is_exactly_once(
        sample in patterns(),
        n in 12usize..24,
        seed in 0u64..1000,
        k in 1usize..80,
    ) {
        let m = (n * (n - 1) / 2) / 2;
        let graph = generators::gnm(n, m, seed);
        let run = variable_oriented_enumerate(&sample, &graph, k, &EngineConfig::serial());
        let oracle = enumerate_generic(&sample, &graph);
        prop_assert_eq!(run.count(), oracle.count());
        prop_assert_eq!(run.duplicates(), 0);
    }

    #[test]
    fn serial_algorithms_are_exactly_once(
        sample in patterns(),
        n in 12usize..26,
        seed in 0u64..1000,
    ) {
        let m = (n * (n - 1) / 2) / 3;
        let graph = generators::gnm(n, m, seed);
        let oracle = enumerate_generic(&sample, &graph);
        let decomposition = enumerate_by_decomposition(&sample, &graph);
        prop_assert_eq!(decomposition.count(), oracle.count());
        prop_assert_eq!(decomposition.duplicates(), 0);
        if sample.is_connected() {
            let bounded = enumerate_bounded_degree(&sample, &graph);
            prop_assert_eq!(bounded.count(), oracle.count());
            prop_assert_eq!(bounded.duplicates(), 0);
        }
    }

    #[test]
    fn triangle_map_reduce_is_exactly_once_on_skewed_graphs(
        n in 40usize..120,
        buckets in 2usize..8,
        seed in 0u64..1000,
    ) {
        // Power-law graphs exercise reducer skew ("the curse of the last reducer").
        let graph = generators::power_law(n, n * 4, 2.4, seed);
        let serial = enumerate_triangles_serial(&graph);
        let run = bucket_ordered_triangles(&graph, buckets, &EngineConfig::serial());
        prop_assert_eq!(run.count(), serial.count());
        prop_assert_eq!(run.duplicates(), 0);
        prop_assert_eq!(run.metrics.key_value_pairs, buckets * graph.num_edges());
    }
}
