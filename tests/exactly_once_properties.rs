//! Property-style integration tests of the paper's central invariant: every
//! algorithm produces each instance of the sample graph exactly once, for any
//! sample graph, data graph, bucket count and node order.
//!
//! The cases are generated deterministically (seeded sweeps over patterns,
//! graph sizes, bucket counts and reducer budgets) so the suite runs without
//! an external property-testing dependency while covering the same space.

use subgraph_mr::prelude::*;

fn patterns() -> Vec<(&'static str, SampleGraph)> {
    vec![
        ("triangle", catalog::triangle()),
        ("square", catalog::square()),
        ("lollipop", catalog::lollipop()),
        ("c5", catalog::cycle(5)),
        ("star4", catalog::star(4)),
        ("path4", catalog::path(4)),
        ("k4", catalog::k4()),
    ]
}

#[test]
fn bucket_oriented_map_reduce_is_exactly_once() {
    for (case, (name, sample)) in patterns().into_iter().enumerate() {
        let n = 12 + 3 * case;
        let m = (n * 3).min(n * (n - 1) / 2);
        let graph = generators::gnm(n, m, 40 + case as u64);
        let oracle = enumerate_generic(&sample, &graph);
        for buckets in [1usize, 2, 4] {
            let run = EnumerationRequest::new(sample.clone(), &graph)
                .strategy(StrategyKind::BucketOriented)
                .reducers(reducer_budget_for_buckets(sample.num_nodes(), buckets))
                .engine(EngineConfig::serial())
                .plan()
                .expect("plannable")
                .execute();
            assert_eq!(run.count(), oracle.count(), "{name} b={buckets}");
            assert_eq!(run.duplicates(), 0, "{name} b={buckets}");
        }
    }
}

/// The reducer budget that makes the planner pick exactly `b` buckets for a
/// `p`-node pattern under bucket-oriented processing (`C(b+p-1, p)` useful
/// reducers).
fn reducer_budget_for_buckets(p: usize, b: usize) -> usize {
    subgraph_mr::shares::counting::useful_reducers(b as u64, p as u64) as usize
}

#[test]
fn variable_oriented_map_reduce_is_exactly_once() {
    for (case, (name, sample)) in patterns().into_iter().enumerate() {
        let n = 12 + 2 * case;
        let m = (n * (n - 1) / 2) / 2;
        let graph = generators::gnm(n, m, 140 + case as u64);
        let oracle = enumerate_generic(&sample, &graph);
        for k in [1usize, 9, 64] {
            let run = EnumerationRequest::new(sample.clone(), &graph)
                .strategy(StrategyKind::VariableOriented)
                .reducers(k)
                .engine(EngineConfig::serial())
                .plan()
                .expect("plannable")
                .execute();
            assert_eq!(run.count(), oracle.count(), "{name} k={k}");
            assert_eq!(run.duplicates(), 0, "{name} k={k}");
        }
    }
}

#[test]
fn serial_algorithms_are_exactly_once() {
    for (case, (name, sample)) in patterns().into_iter().enumerate() {
        let n = 12 + 2 * case;
        let m = (n * (n - 1) / 2) / 3;
        let graph = generators::gnm(n, m, 240 + case as u64);
        let oracle = enumerate_generic(&sample, &graph);
        let decomposition = enumerate_by_decomposition(&sample, &graph);
        assert_eq!(decomposition.count(), oracle.count(), "{name}");
        assert_eq!(decomposition.duplicates(), 0, "{name}");
        if sample.is_connected() {
            let bounded = enumerate_bounded_degree(&sample, &graph);
            assert_eq!(bounded.count(), oracle.count(), "{name}");
            assert_eq!(bounded.duplicates(), 0, "{name}");
        }
    }
}

#[test]
fn triangle_map_reduce_is_exactly_once_on_skewed_graphs() {
    // Power-law graphs exercise reducer skew ("the curse of the last reducer").
    for (case, &(n, buckets)) in [(40usize, 2usize), (60, 3), (80, 5), (110, 7)]
        .iter()
        .enumerate()
    {
        let graph = generators::power_law(n, n * 4, 2.4, 340 + case as u64);
        let serial = enumerate_triangles_serial(&graph);
        let run = EnumerationRequest::new(catalog::triangle(), &graph)
            .strategy(StrategyKind::BucketOrderedTriangles)
            .reducers(reducer_budget_for_buckets(3, buckets))
            .engine(EngineConfig::serial())
            .plan()
            .expect("plannable")
            .execute();
        assert_eq!(run.count(), serial.count(), "n={n} b={buckets}");
        assert_eq!(run.duplicates(), 0, "n={n} b={buckets}");
        assert_eq!(
            run.metrics.as_ref().map(|m| m.key_value_pairs),
            Some(buckets * graph.num_edges()),
            "n={n} b={buckets}"
        );
    }
}
