//! End-to-end integration tests across the whole workspace: every map-reduce
//! strategy, every serial algorithm and every CQ family must agree with the
//! generic oracle and produce each instance exactly once.

use subgraph_mr::prelude::*;

fn oracle_count(sample: &SampleGraph, graph: &DataGraph) -> usize {
    let run = enumerate_generic(sample, graph);
    assert_eq!(run.duplicates(), 0);
    run.count()
}

#[test]
fn all_strategies_agree_on_the_square() {
    let graph = generators::gnm(45, 260, 1001);
    let sample = catalog::square();
    let expected = oracle_count(&sample, &graph);
    let config = EngineConfig::default();

    let variable = variable_oriented_enumerate(&sample, &graph, 64, &config);
    assert_eq!(variable.count(), expected);
    assert_eq!(variable.duplicates(), 0);

    let cq = cq_oriented_enumerate(&sample, &graph, 64, &config);
    assert_eq!(cq.count(), expected);
    assert_eq!(cq.duplicates(), 0);

    let bucket = bucket_oriented_enumerate(&sample, &graph, 4, &config);
    assert_eq!(bucket.count(), expected);
    assert_eq!(bucket.duplicates(), 0);

    let decomposition = enumerate_by_decomposition(&sample, &graph);
    assert_eq!(decomposition.count(), expected);

    let bounded = enumerate_bounded_degree(&sample, &graph);
    assert_eq!(bounded.count(), expected);
}

#[test]
fn all_strategies_agree_on_the_lollipop() {
    let graph = generators::gnm(40, 210, 1002);
    let sample = catalog::lollipop();
    let expected = oracle_count(&sample, &graph);
    let config = EngineConfig::default();

    assert_eq!(
        variable_oriented_enumerate(&sample, &graph, 100, &config).count(),
        expected
    );
    assert_eq!(
        bucket_oriented_enumerate(&sample, &graph, 3, &config).count(),
        expected
    );
    assert_eq!(enumerate_by_decomposition(&sample, &graph).count(), expected);
    assert_eq!(enumerate_bounded_degree(&sample, &graph).count(), expected);
}

#[test]
fn triangle_algorithms_agree_with_each_other_and_the_serial_baseline() {
    let graph = generators::gnm(120, 900, 1003);
    let config = EngineConfig::default();
    let serial = enumerate_triangles_serial(&graph);
    let expected = serial.count();

    for b in [3usize, 6] {
        assert_eq!(partition_triangles(&graph, b, &config).count(), expected);
    }
    for b in [2usize, 5] {
        assert_eq!(multiway_triangles(&graph, b, &config).count(), expected);
        assert_eq!(bucket_ordered_triangles(&graph, b, &config).count(), expected);
    }
    assert_eq!(oracle_count(&catalog::triangle(), &graph), expected);
    assert_eq!(enumerate_odd_cycles(&graph, 1).count(), expected);
}

#[test]
fn pentagons_by_four_different_routes() {
    let graph = generators::gnm(22, 80, 1004);
    let sample = catalog::cycle(5);
    let expected = oracle_count(&sample, &graph);
    let config = EngineConfig::default();

    // Route 1: general CQs evaluated serially.
    let general = evaluate_cqs(
        &cqs_for_sample(&sample),
        &graph,
        &subgraph_mr::graph::IdOrder,
    );
    assert_eq!(general.assignments, expected);
    assert_eq!(general.duplicates(), 0);

    // Route 2: Section 5 run-sequence CQs.
    let runs: Vec<_> = cycle_cqs(5).into_iter().map(|c| c.query).collect();
    let via_runs = evaluate_cqs(&runs, &graph, &subgraph_mr::graph::IdOrder);
    assert_eq!(via_runs.assignments, expected);
    assert_eq!(via_runs.duplicates(), 0);

    // Route 3: the OddCycle serial algorithm.
    assert_eq!(enumerate_odd_cycles(&graph, 2).count(), expected);

    // Route 4: one round of map-reduce (bucket-oriented).
    let mr = bucket_oriented_enumerate(&sample, &graph, 3, &config);
    assert_eq!(mr.count(), expected);
    assert_eq!(mr.duplicates(), 0);
}

#[test]
fn communication_costs_follow_the_paper_ordering() {
    // At comparable reducer counts: bucket-ordered < Partition < multiway,
    // which is the ordering of Figure 2.
    let graph = generators::gnm(250, 2_200, 1005);
    let config = EngineConfig::default();
    let ordered = bucket_ordered_triangles(&graph, 10, &config);
    let partition = partition_triangles(&graph, 12, &config);
    let multiway = multiway_triangles(&graph, 6, &config);
    assert!(ordered.metrics.key_value_pairs < partition.metrics.key_value_pairs);
    assert!(partition.metrics.key_value_pairs < multiway.metrics.key_value_pairs);
}

#[test]
fn share_planning_matches_measured_communication() {
    let graph = generators::gnm(90, 600, 1006);
    let sample = catalog::square();
    let plan = subgraph_mr::core::enumerate::variable_oriented::plan(&sample, 81);
    let run = subgraph_mr::core::enumerate::variable_oriented::run_with_plan(
        &graph,
        &plan,
        &EngineConfig::default(),
    );
    let predicted = plan.predicted_replication * graph.num_edges() as f64;
    assert_eq!(run.metrics.key_value_pairs as f64, predicted);
}

#[test]
fn power_law_graphs_are_handled_end_to_end() {
    let graph = generators::power_law(400, 1_500, 2.5, 1007);
    let sample = catalog::triangle();
    let expected = oracle_count(&sample, &graph);
    let run = bucket_ordered_triangles(&graph, 6, &EngineConfig::default());
    assert_eq!(run.count(), expected);
    assert_eq!(run.duplicates(), 0);
}
