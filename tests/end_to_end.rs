//! End-to-end integration tests across the whole workspace: every map-reduce
//! strategy, every serial algorithm and every CQ family must agree with the
//! generic oracle and produce each instance exactly once — all driven through
//! the unified `EnumerationRequest` / `Planner` entry point.

use subgraph_mr::prelude::*;

fn oracle_count(sample: &SampleGraph, graph: &DataGraph) -> usize {
    let run = enumerate_generic(sample, graph);
    assert_eq!(run.duplicates(), 0);
    run.count()
}

/// Runs the request with a forced strategy and returns the unified report.
fn run_forced(sample: &SampleGraph, graph: &DataGraph, kind: StrategyKind, k: usize) -> RunReport {
    EnumerationRequest::new(sample.clone(), graph)
        .reducers(k)
        .strategy(kind)
        .plan()
        .expect("strategy applies")
        .execute()
}

#[test]
fn all_strategies_agree_on_the_square() {
    let graph = generators::gnm(45, 260, 1001);
    let sample = catalog::square();
    let expected = oracle_count(&sample, &graph);

    for kind in [
        StrategyKind::VariableOriented,
        StrategyKind::CqOriented,
        StrategyKind::BucketOriented,
        StrategyKind::SerialDecomposition,
        StrategyKind::SerialBoundedDegree,
    ] {
        let report = run_forced(&sample, &graph, kind, 64);
        assert_eq!(report.count(), expected, "{kind}");
        assert_eq!(report.duplicates(), 0, "{kind}");
    }
}

#[test]
fn all_strategies_agree_on_the_lollipop() {
    let graph = generators::gnm(40, 210, 1002);
    let sample = catalog::lollipop();
    let expected = oracle_count(&sample, &graph);

    for (kind, k) in [
        (StrategyKind::VariableOriented, 100),
        (StrategyKind::BucketOriented, 15),
        (StrategyKind::SerialDecomposition, 1),
        (StrategyKind::SerialBoundedDegree, 1),
    ] {
        let report = run_forced(&sample, &graph, kind, k);
        assert_eq!(report.count(), expected, "{kind}");
        assert_eq!(report.duplicates(), 0, "{kind}");
    }
}

#[test]
fn triangle_algorithms_agree_with_each_other_and_the_serial_baseline() {
    let graph = generators::gnm(120, 900, 1003);
    let serial = enumerate_triangles_serial(&graph);
    let expected = serial.count();
    let sample = catalog::triangle();

    for kind in [
        StrategyKind::PartitionTriangles,
        StrategyKind::MultiwayTriangles,
        StrategyKind::BucketOrderedTriangles,
        StrategyKind::CascadeTriangles,
    ] {
        for k in [27usize, 220] {
            let report = run_forced(&sample, &graph, kind, k);
            assert_eq!(report.count(), expected, "{kind} k={k}");
            assert_eq!(report.duplicates(), 0, "{kind} k={k}");
        }
    }
    assert_eq!(oracle_count(&sample, &graph), expected);
    assert_eq!(enumerate_odd_cycles(&graph, 1).count(), expected);
}

#[test]
fn pentagons_by_four_different_routes() {
    let graph = generators::gnm(22, 80, 1004);
    let sample = catalog::cycle(5);
    let expected = oracle_count(&sample, &graph);

    // Route 1: general CQs evaluated serially.
    let general = evaluate_cqs(
        &cqs_for_sample(&sample),
        &graph,
        &subgraph_mr::graph::IdOrder,
    );
    assert_eq!(general.assignments, expected);
    assert_eq!(general.duplicates(), 0);

    // Route 2: Section 5 run-sequence CQs.
    let runs: Vec<_> = cycle_cqs(5).into_iter().map(|c| c.query).collect();
    let via_runs = evaluate_cqs(&runs, &graph, &subgraph_mr::graph::IdOrder);
    assert_eq!(via_runs.assignments, expected);
    assert_eq!(via_runs.duplicates(), 0);

    // Route 3: the OddCycle serial algorithm.
    assert_eq!(enumerate_odd_cycles(&graph, 2).count(), expected);

    // Route 4: one round of map-reduce, strategy chosen by the planner.
    let plan = EnumerationRequest::new(sample, &graph)
        .reducers(35)
        .plan()
        .unwrap();
    let mr = plan.execute();
    assert_eq!(mr.count(), expected);
    assert_eq!(mr.duplicates(), 0);
    assert_eq!(mr.rounds, 1);
}

#[test]
fn communication_costs_follow_the_paper_ordering() {
    // At comparable reducer counts: bucket-ordered < Partition < multiway,
    // which is the ordering of Figure 2 — both measured and as predicted by
    // the planner's cost estimates.
    let graph = generators::gnm(250, 2_200, 1005);
    let sample = catalog::triangle();
    let plan = EnumerationRequest::new(sample.clone(), &graph)
        .reducers(220)
        .plan()
        .unwrap();
    let estimate = |kind: StrategyKind| {
        plan.candidates()
            .iter()
            .find(|c| c.strategy == kind)
            .unwrap_or_else(|| panic!("{kind} missing"))
            .communication
    };
    assert!(
        estimate(StrategyKind::BucketOrderedTriangles) < estimate(StrategyKind::PartitionTriangles)
    );
    assert!(estimate(StrategyKind::PartitionTriangles) < estimate(StrategyKind::MultiwayTriangles));

    let ordered = run_forced(&sample, &graph, StrategyKind::BucketOrderedTriangles, 220);
    let partition = run_forced(&sample, &graph, StrategyKind::PartitionTriangles, 220);
    let multiway = run_forced(&sample, &graph, StrategyKind::MultiwayTriangles, 220);
    assert!(ordered.communication() < partition.communication());
    assert!(partition.communication() < multiway.communication());
}

#[test]
fn share_planning_matches_measured_communication() {
    let graph = generators::gnm(90, 600, 1006);
    let plan = EnumerationRequest::new(catalog::square(), &graph)
        .reducers(81)
        .strategy(StrategyKind::VariableOriented)
        .plan()
        .unwrap();
    let run = plan.execute();
    assert_eq!(run.communication() as f64, plan.predicted_communication());
}

#[test]
fn power_law_graphs_are_handled_end_to_end() {
    let graph = generators::power_law(400, 1_500, 2.5, 1007);
    let sample = catalog::triangle();
    let expected = oracle_count(&sample, &graph);
    let run = run_forced(&sample, &graph, StrategyKind::BucketOrderedTriangles, 56);
    assert_eq!(run.count(), expected);
    assert_eq!(run.duplicates(), 0);
}

#[test]
fn explain_describes_the_plan_end_to_end() {
    let graph = generators::gnm(60, 300, 1008);
    let plan = EnumerationRequest::named("square", &graph)
        .unwrap()
        .reducers(128)
        .plan()
        .unwrap();
    let text = plan.explain();
    assert!(text.contains("\"square\""));
    assert!(text.contains("reducer budget k = 128"));
    assert!(text.contains("predicted replication"));
    assert!(text.contains("predicted reducer work"));
    // Every general-pattern strategy shows up in the candidate table.
    assert!(text.contains("bucket-oriented"));
    assert!(text.contains("variable-oriented"));
    assert!(text.contains("cq-oriented"));
}
