//! Differential suite for the planner's branch-and-bound order-class search
//! (`subgraph_core::plan::search`): on every catalog pattern and on seeded
//! random connected samples, branch-and-bound must pick the same ordering
//! class as the exhaustive score-everything oracle with bitwise-identical
//! cost numbers, and its counters must tile the Theorem 3.1 quotient:
//! `classes_scored + classes_pruned == p!/|Aut(S)|`.

use subgraph_mr::core::plan::{search_order_classes, SearchMode};
use subgraph_mr::cq::cq_for_ordering;
use subgraph_mr::pattern::automorphism::{automorphism_group, NodeOrdering};
use subgraph_mr::pattern::PatternNode;
use subgraph_mr::prelude::*;
use subgraph_mr::shares::dominance::single_cq_expression_with_dominance;
use subgraph_mr::shares::optimize_shares;

/// Deterministic xorshift-free LCG (same constants as the crate proptests).
struct Lcg(u64);

impl Lcg {
    fn next_u64(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }
}

/// `p!/|Aut(S)|` — the number of order classes both modes must account for.
fn quotient(sample: &SampleGraph) -> usize {
    let p = sample.num_nodes();
    (1..=p).product::<usize>() / automorphism_group(sample).len()
}

/// The true optimized cost of one ordering, solved directly — the bitwise
/// oracle for a single class.
fn direct_cost(sample: &SampleGraph, ordering: &NodeOrdering, k: f64) -> f64 {
    let expr = single_cq_expression_with_dominance(&cq_for_ordering(sample, ordering));
    optimize_shares(&expr, k).cost_per_edge
}

/// Full differential check: run both modes and pin the branch-and-bound
/// result to the exhaustive oracle bitwise.
fn assert_modes_agree(name: &str, sample: &SampleGraph, k: f64) {
    let bb = search_order_classes(sample, k, SearchMode::BranchAndBound);
    let ex = search_order_classes(sample, k, SearchMode::Exhaustive);
    assert_eq!(bb.winner, ex.winner, "{name} k={k}: winner ordering");
    assert_eq!(
        bb.winner_cost.to_bits(),
        ex.winner_cost.to_bits(),
        "{name} k={k}: winner cost"
    );
    assert_eq!(
        bb.per_class_costs.len(),
        ex.per_class_costs.len(),
        "{name} k={k}: class count"
    );
    for (i, (a, b)) in bb
        .per_class_costs
        .iter()
        .zip(&ex.per_class_costs)
        .enumerate()
    {
        assert_eq!(a.to_bits(), b.to_bits(), "{name} k={k}: class {i} cost");
    }
    let total = quotient(sample);
    assert_eq!(bb.total_classes, total, "{name}: quotient size");
    assert_eq!(
        bb.classes_scored + bb.classes_pruned,
        total,
        "{name}: counters must tile the quotient"
    );
    assert_eq!(ex.classes_scored, total, "{name}: oracle scores everything");
    assert_eq!(ex.classes_pruned, 0, "{name}: oracle never prunes");
}

/// Structural checks plus a sampled bitwise oracle, for samples whose class
/// count makes the full exhaustive oracle too slow: solve a handful of random
/// orderings directly and pin them against the search's per-class costs.
fn assert_sampled_oracle(name: &str, sample: &SampleGraph, k: f64, rng: &mut Lcg) {
    let bb = search_order_classes(sample, k, SearchMode::BranchAndBound);
    let total = quotient(sample);
    assert_eq!(bb.total_classes, total, "{name}");
    assert_eq!(bb.classes_scored + bb.classes_pruned, total, "{name}");
    assert_eq!(bb.per_class_costs.len(), total, "{name}");
    // The winner's cost must be reproducible by solving its CQ directly.
    assert_eq!(
        bb.winner_cost.to_bits(),
        direct_cost(sample, &bb.winner, k).to_bits(),
        "{name}: winner cost must match a direct solve"
    );
    // Single-CQ cost expressions are orientation-independent, so every class
    // — and any random ordering at all — costs bitwise the same as the
    // winner. Check a few random orderings against that claim.
    let p = sample.num_nodes();
    for trial in 0..4 {
        let mut ordering: NodeOrdering = (0..p as PatternNode).collect();
        for i in (1..p).rev() {
            ordering.swap(i, rng.below(i + 1));
        }
        assert_eq!(
            direct_cost(sample, &ordering, k).to_bits(),
            bb.winner_cost.to_bits(),
            "{name}: random ordering {trial} must cost the same as the winner"
        );
    }
    for (i, cost) in bb.per_class_costs.iter().enumerate() {
        assert_eq!(
            cost.to_bits(),
            bb.winner_cost.to_bits(),
            "{name}: per-class cost {i}"
        );
    }
}

/// Class-count cap for running the full exhaustive oracle: the debug solver
/// is ~15x slower, so big quotients are exercised there through the sampled
/// oracle instead (release runs still cover them exhaustively).
fn exhaustive_cap() -> usize {
    if cfg!(debug_assertions) {
        120
    } else {
        840
    }
}

/// A random connected sample: a random spanning tree (each node attaches to
/// an earlier one) plus random extra edges.
fn random_connected_sample(rng: &mut Lcg, p: usize) -> SampleGraph {
    let mut edges: Vec<(PatternNode, PatternNode)> = Vec::new();
    for v in 1..p {
        let u = rng.below(v);
        edges.push((u as PatternNode, v as PatternNode));
    }
    let extra = rng.below(p);
    for _ in 0..extra {
        let a = rng.below(p);
        let b = rng.below(p);
        if a == b {
            continue;
        }
        let edge = (a.min(b) as PatternNode, a.max(b) as PatternNode);
        if !edges.contains(&edge) {
            edges.push(edge);
        }
    }
    edges.sort_unstable();
    let sample = SampleGraph::from_edges(p, &edges);
    assert!(sample.is_connected());
    sample
}

#[test]
fn catalog_patterns_agree_between_modes() {
    for entry in catalog::entries() {
        for k in [16.0, 750.0] {
            if entry.order_classes() <= exhaustive_cap() {
                assert_modes_agree(entry.name, &entry.sample, k);
            } else {
                let mut rng = Lcg(0x9e3779b97f4a7c15);
                assert_sampled_oracle(entry.name, &entry.sample, k, &mut rng);
            }
        }
    }
}

#[test]
fn random_connected_samples_agree_between_modes() {
    let mut rng = Lcg(0x2545f4914f6cdd1d);
    // Full differential on sizes where the quotient stays affordable; bigger
    // samples (up to 8 nodes, possibly trivial automorphism groups — 40320
    // classes) go through the sampled bitwise oracle.
    for trial in 0..12 {
        let p = 4 + rng.below(5); // 4..=8 nodes
        let sample = random_connected_sample(&mut rng, p);
        let name = format!("random-{trial}-p{p}");
        let k = if trial % 2 == 0 { 64.0 } else { 750.0 };
        if quotient(&sample) <= exhaustive_cap() {
            assert_modes_agree(&name, &sample, k);
        } else {
            assert_sampled_oracle(&name, &sample, k, &mut rng);
        }
    }
}

#[test]
fn planner_estimates_are_identical_across_search_modes() {
    // Through the full planner: both modes must produce the same chosen
    // strategy and the same estimate numbers for every candidate — the only
    // legitimate difference is how many classes were scored vs pruned.
    let graph = generators::gnm(500, 2500, 11);
    for entry in catalog::entries() {
        if cfg!(debug_assertions) && entry.order_classes() > exhaustive_cap() {
            continue;
        }
        let plan_with = |mode: SearchMode| {
            EnumerationRequest::new(entry.sample.clone(), &graph)
                .reducers(64)
                .search_mode(mode)
                .plan()
                .expect("plannable")
        };
        let bb = plan_with(SearchMode::BranchAndBound);
        let ex = plan_with(SearchMode::Exhaustive);
        assert_eq!(
            bb.chosen().strategy,
            ex.chosen().strategy,
            "{}: chosen strategy",
            entry.name
        );
        let pairs = bb.candidates().iter().zip(ex.candidates());
        for (a, b) in pairs {
            assert_eq!(a.strategy, b.strategy, "{}", entry.name);
            assert_eq!(a.paper_section, b.paper_section, "{}", entry.name);
            assert_eq!(a.rounds, b.rounds, "{}", entry.name);
            assert_eq!(a.buckets, b.buckets, "{}", entry.name);
            assert_eq!(a.shares, b.shares, "{}: shares", entry.name);
            assert_eq!(
                a.replication_per_edge.to_bits(),
                b.replication_per_edge.to_bits(),
                "{}: replication",
                entry.name
            );
            assert_eq!(
                a.communication.to_bits(),
                b.communication.to_bits(),
                "{}: communication",
                entry.name
            );
            assert_eq!(a.reducers.to_bits(), b.reducers.to_bits(), "{}", entry.name);
            assert_eq!(
                a.reducer_work.to_bits(),
                b.reducer_work.to_bits(),
                "{}: work",
                entry.name
            );
            assert_eq!(a.round_costs.len(), b.round_costs.len(), "{}", entry.name);
            for (ra, rb) in a.round_costs.iter().zip(&b.round_costs) {
                assert_eq!(ra.name, rb.name, "{}", entry.name);
                assert_eq!(ra.emitted.to_bits(), rb.emitted.to_bits(), "{}", entry.name);
                assert_eq!(
                    ra.shuffled.to_bits(),
                    rb.shuffled.to_bits(),
                    "{}",
                    entry.name
                );
                assert_eq!(
                    ra.shuffle_bytes.to_bits(),
                    rb.shuffle_bytes.to_bits(),
                    "{}",
                    entry.name
                );
            }
            // The counters are the one field allowed to differ; they must
            // still tile the same quotient when the strategy searched.
            assert_eq!(
                a.classes_scored + a.classes_pruned,
                b.classes_scored + b.classes_pruned,
                "{}: counter totals",
                entry.name
            );
        }
    }
}

#[test]
fn branch_and_bound_counters_tile_the_quotient_on_the_catalog() {
    for entry in catalog::entries() {
        let search = search_order_classes(&entry.sample, 64.0, SearchMode::BranchAndBound);
        assert_eq!(
            search.classes_scored + search.classes_pruned,
            entry.order_classes(),
            "{}",
            entry.name
        );
        // The tight single-CQ bound collapses the search to one solve.
        assert_eq!(search.classes_scored, 1, "{}", entry.name);
    }
}
