//! Property-style tests of the planner (deterministic seeded sweeps):
//!
//! 1. `ExecutionPlan::execute()` matches the serial oracle
//!    (`enumerate_generic`) on random G(n, m) graphs for every catalog
//!    pattern, whatever strategy the planner picks.
//! 2. The planner's predicted replication stays within a constant factor of
//!    the measured `JobMetrics::key_value_pairs`.

use subgraph_mr::prelude::*;

fn catalog_patterns() -> Vec<(&'static str, SampleGraph)> {
    vec![
        ("triangle", catalog::triangle()),
        ("square", catalog::square()),
        ("lollipop", catalog::lollipop()),
        ("c5", catalog::cycle(5)),
        ("star4", catalog::star(4)),
        ("path4", catalog::path(4)),
        ("k4", catalog::k4()),
    ]
}

#[test]
fn planned_execution_matches_the_serial_oracle_on_random_graphs() {
    for (case, (name, sample)) in catalog_patterns().into_iter().enumerate() {
        for (round, &k) in [1usize, 24, 96].iter().enumerate() {
            let n = 14 + 2 * case + round;
            let m = (n * 3).min(n * (n - 1) / 2);
            let graph = generators::gnm(n, m, 7_000 + (case * 10 + round) as u64);
            let plan = EnumerationRequest::new(sample.clone(), &graph)
                .reducers(k)
                .engine(EngineConfig::serial())
                .plan()
                .unwrap_or_else(|e| panic!("{name} k={k}: {e}"));
            let report = plan.execute();
            let oracle = enumerate_generic(&sample, &graph);
            assert_eq!(
                report.count(),
                oracle.count(),
                "{name} k={k} strategy={}",
                plan.strategy()
            );
            assert_eq!(report.duplicates(), 0, "{name} k={k}");
            // Budget 1 plans serial, larger budgets plan map-reduce.
            assert_eq!(plan.strategy().is_serial(), k <= 1, "{name} k={k}");
        }
    }
}

#[test]
fn predicted_replication_is_within_a_constant_factor_of_measured() {
    // The bucket-oriented prediction is exact; the share-based ones are exact
    // up to integer rounding of the shares. A factor-3 band catches any
    // regression in either direction without flaking on rounding.
    for (case, (name, sample)) in catalog_patterns().into_iter().enumerate() {
        let n = 40 + 4 * case;
        let m = n * 5;
        let graph = generators::gnm(n, m, 9_000 + case as u64);
        for (kind, k) in [
            (StrategyKind::BucketOriented, 70),
            (StrategyKind::VariableOriented, 64),
            (StrategyKind::CqOriented, 32),
        ] {
            let plan = EnumerationRequest::new(sample.clone(), &graph)
                .reducers(k)
                .engine(EngineConfig::serial())
                .strategy(kind)
                .plan()
                .unwrap();
            let report = plan.execute();
            let predicted = plan.predicted_communication();
            let measured = report.communication() as f64;
            assert!(
                measured <= predicted * 3.0 && measured >= predicted / 3.0,
                "{name} {kind}: measured {measured} vs predicted {predicted}"
            );
        }
    }
}

#[test]
fn bucket_oriented_prediction_is_exact() {
    // Section 4.5: every edge goes to exactly C(b + p - 3, p - 2) reducers,
    // so the planner's communication prediction must match to the pair.
    for (name, sample) in catalog_patterns() {
        let graph = generators::gnm(50, 250, 11_000);
        let plan = EnumerationRequest::new(sample, &graph)
            .reducers(50)
            .engine(EngineConfig::serial())
            .strategy(StrategyKind::BucketOriented)
            .plan()
            .unwrap();
        let report = plan.execute();
        assert_eq!(
            report.communication() as f64,
            plan.predicted_communication(),
            "{name}"
        );
    }
}

#[test]
fn predicted_shuffle_bytes_match_measured_for_exact_strategies() {
    // The byte accounting must be consistent end to end: the planner predicts
    // shuffled records x per-record bytes with the same weigher the engine
    // charges, so for strategies whose record-count prediction is exact the
    // byte prediction must match the measured `shuffle_bytes` to the byte.
    for (name, sample) in catalog_patterns() {
        let graph = generators::gnm(50, 250, 13_000);
        for (kind, k) in [
            (StrategyKind::BucketOriented, 70),
            (StrategyKind::VariableOriented, 128),
        ] {
            let plan = EnumerationRequest::new(sample.clone(), &graph)
                .reducers(k)
                .engine(EngineConfig::serial())
                .strategy(kind)
                .plan()
                .unwrap();
            let report = plan.execute();
            assert_eq!(
                report.shuffle_bytes() as f64,
                plan.chosen().predicted_shuffle_bytes(),
                "{name} {kind}"
            );
            assert_eq!(
                report.communication() as f64,
                plan.predicted_communication(),
                "{name} {kind}"
            );
        }
    }
    // The triangle specializations with exact predictions, including the
    // multiway join whose combiner discount (3b - 2 of 3b) is part of the
    // prediction.
    let graph = generators::gnm(80, 500, 14_000);
    for (kind, k) in [
        (StrategyKind::BucketOrderedTriangles, 220),
        (StrategyKind::MultiwayTriangles, 216),
    ] {
        let plan = EnumerationRequest::new(catalog::triangle(), &graph)
            .reducers(k)
            .engine(EngineConfig::serial())
            .strategy(kind)
            .plan()
            .unwrap();
        let report = plan.execute();
        assert_eq!(
            report.shuffle_bytes() as f64,
            plan.chosen().predicted_shuffle_bytes(),
            "{kind}"
        );
        assert_eq!(
            report.communication() as f64,
            plan.predicted_communication(),
            "{kind}"
        );
    }
}

#[test]
fn multiway_emission_and_shipment_bracket_the_paper_formulas() {
    // Emitted pairs follow footnote 1's naive 3b per edge; shipped pairs
    // follow the paper's 3b - 2 once the combiner merges coinciding roles.
    let graph = generators::gnm(80, 500, 15_000);
    let plan = EnumerationRequest::new(catalog::triangle(), &graph)
        .reducers(216)
        .engine(EngineConfig::serial())
        .strategy(StrategyKind::MultiwayTriangles)
        .plan()
        .unwrap();
    let b = plan.chosen().buckets.expect("bucketed strategy");
    let report = plan.execute();
    let m = graph.num_edges();
    assert_eq!(report.emitted_communication(), 3 * b * m);
    assert_eq!(report.communication(), (3 * b - 2) * m);
    assert_eq!(plan.chosen().emitted_communication(), (3 * b * m) as f64);
}

#[test]
fn variable_oriented_prediction_is_exact() {
    // Section 4.3: the engine counts exactly what the cost expression models
    // (at the integer shares), so prediction and measurement agree exactly.
    for (name, sample) in catalog_patterns() {
        let graph = generators::gnm(60, 360, 12_000);
        let plan = EnumerationRequest::new(sample, &graph)
            .reducers(128)
            .engine(EngineConfig::serial())
            .strategy(StrategyKind::VariableOriented)
            .plan()
            .unwrap();
        let report = plan.execute();
        assert_eq!(
            report.communication() as f64,
            plan.predicted_communication(),
            "{name}"
        );
    }
}
