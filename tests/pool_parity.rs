//! Pool-parity suite: the persistent worker-pool executor must be
//! indistinguishable — outputs, output *order*, and every `JobMetrics`
//! counter — from the scoped-thread executor it replaced.
//!
//! Pinned invariants:
//!
//! 1. **Byte-identical parity sweep** at `num_threads ∈ {1, 2, 8}`, with and
//!    without combiners: the pooled path's outputs arrive in the exact order
//!    the scoped path produces, and all counters match field for field
//!    (timings excluded — they are measurements, not results).
//! 2. **Edge cases**: a pool with more workers than input items, an
//!    empty-input round, and one pool reused across two pipelines of
//!    different key/value types (exercising the type-erased buffer
//!    recycling).
//! 3. **Planner-level parity**: a real strategy run through
//!    `EnumerationRequest` counts the same on both executors.

use std::sync::Arc;
use std::time::Duration;
use subgraph_mr::mapreduce::{
    EngineConfig, JobMetrics, MapContext, Pipeline, PipelineReport, ReduceContext, Round,
    WorkerPool,
};
use subgraph_mr::prelude::*;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// Word-count style round; 53 distinct keys so every reduce shard sees work
/// at 8 threads.
fn counting_round<'a>(combine: bool) -> Round<'a, u64, u64, u64, (u64, u64)> {
    let round = Round::new(
        "count",
        |x: &u64, ctx: &mut MapContext<u64, u64>| ctx.emit(x % 53, *x),
        |k: &u64, vs: &[u64], ctx: &mut ReduceContext<(u64, u64)>| {
            ctx.add_work(vs.len() as u64);
            ctx.emit((*k, vs.iter().sum()));
        },
    );
    if combine {
        round.combiner(|_k: &u64, vs: Vec<u64>| vec![vs.iter().sum()])
    } else {
        round
    }
}

/// Per-round counters with wall-clock timings zeroed for comparison.
fn counters_of(report: &PipelineReport) -> Vec<(String, JobMetrics)> {
    report
        .rounds
        .iter()
        .map(|round| {
            let mut metrics = round.metrics.clone();
            metrics.map_time = Duration::ZERO;
            metrics.partition_time = Duration::ZERO;
            metrics.shuffle_time = Duration::ZERO;
            metrics.reduce_time = Duration::ZERO;
            (round.name.clone(), metrics)
        })
        .collect()
}

#[test]
fn pooled_execution_is_byte_identical_to_scoped_threads() {
    let inputs: Vec<u64> = (0..2000).map(|i| i * 37 % 613).collect();
    let pool = Arc::new(WorkerPool::new(3));
    for threads in THREAD_COUNTS {
        for combine in [true, false] {
            let scoped = EngineConfig::with_threads(threads)
                .combiners(combine)
                .scoped_threads();
            let pooled = EngineConfig::with_threads(threads)
                .combiners(combine)
                .with_pool(Arc::clone(&pool));
            assert!(!scoped.uses_pool());
            assert!(pooled.uses_pool());

            let (scoped_out, scoped_report) = Pipeline::new()
                .round(counting_round(combine))
                .run(&inputs, &scoped);
            let (pooled_out, pooled_report) = Pipeline::new()
                .round(counting_round(combine))
                .run(&inputs, &pooled);

            // Exact order, not just the same multiset: deterministic configs
            // promise reproducible output order across executors.
            assert_eq!(
                pooled_out, scoped_out,
                "threads={threads} combine={combine}"
            );
            assert_eq!(
                counters_of(&pooled_report),
                counters_of(&scoped_report),
                "threads={threads} combine={combine}"
            );
        }
    }
}

#[test]
fn arena_shuffle_is_byte_identical_to_both_classic_executors() {
    // The arena-opted round on the pooled executor (serialized per-shard
    // byte arenas) against the classic pooled path and the scoped baseline:
    // exact output order and every counter, at every thread count.
    let inputs: Vec<u64> = (0..2500).map(|i| i * 41 % 733).collect();
    let arena_round = || {
        Round::new(
            "count",
            |x: &u64, ctx: &mut MapContext<u64, u64>| ctx.emit(x % 53, *x),
            |k: &u64, vs: &[u64], ctx: &mut ReduceContext<(u64, u64)>| {
                ctx.add_work(vs.len() as u64);
                ctx.emit((*k, vs.iter().sum()));
            },
        )
        .arena()
    };
    let pool = Arc::new(WorkerPool::new(3));
    for threads in THREAD_COUNTS {
        for deterministic in [true, false] {
            let mut base = EngineConfig::with_threads(threads);
            base.deterministic = deterministic;
            let arena = base.clone().with_pool(Arc::clone(&pool));
            let classic = base
                .clone()
                .arena_shuffle(false)
                .with_pool(Arc::clone(&pool));
            let scoped = base.scoped_threads();

            let (arena_out, arena_report) =
                Pipeline::new().round(arena_round()).run(&inputs, &arena);
            let (classic_out, classic_report) =
                Pipeline::new().round(arena_round()).run(&inputs, &classic);
            let (scoped_out, scoped_report) =
                Pipeline::new().round(arena_round()).run(&inputs, &scoped);

            let context = format!("threads={threads} deterministic={deterministic}");
            assert_eq!(arena_out, classic_out, "{context}");
            assert_eq!(arena_out, scoped_out, "{context}");
            assert_eq!(
                counters_of(&arena_report),
                counters_of(&classic_report),
                "{context}"
            );
            assert_eq!(
                counters_of(&arena_report),
                counters_of(&scoped_report),
                "{context}"
            );
        }
    }
}

/// [`counters_of`] with the spill counters also flattened — a budgeted arena
/// run is compared against executors that never spill, and the spill
/// counters are the one permitted difference.
fn counters_sans_spill(report: &PipelineReport) -> Vec<(String, JobMetrics)> {
    counters_of(report)
        .into_iter()
        .map(|(name, mut metrics)| {
            metrics.spilled_bytes = 0;
            metrics.spill_runs = 0;
            metrics.spill_read_secs = Duration::ZERO;
            (name, metrics)
        })
        .collect()
}

#[test]
fn a_64k_budget_on_the_arena_path_matches_both_classic_executors() {
    // Forced 64 KiB shuffle budget on the pooled arena path: the run must
    // actually seal, spill and merge runs from disk, and still produce the
    // exact output order and (spill counters aside) the exact counters of
    // the classic pooled path and the scoped baseline. 250k records are
    // enough that even at 8 threads (64 map×reduce buckets) every bucket
    // fills several chunks, so sealed chunks exist to spill.
    let inputs: Vec<u64> = (0..250_000).map(|i| i * 41 % 733).collect();
    let arena_round = || {
        Round::new(
            "count",
            |x: &u64, ctx: &mut MapContext<u64, u64>| ctx.emit(x % 53, *x),
            |k: &u64, vs: &[u64], ctx: &mut ReduceContext<(u64, u64)>| {
                ctx.add_work(vs.len() as u64);
                ctx.emit((*k, vs.iter().sum()));
            },
        )
        .arena()
    };
    let pool = Arc::new(WorkerPool::new(3));
    for threads in THREAD_COUNTS {
        let context = format!("threads={threads} budget=64K");
        let base = EngineConfig::with_threads(threads);
        let budgeted = base
            .clone()
            .memory_budget(64 << 10)
            .with_pool(Arc::clone(&pool));
        let classic = base
            .clone()
            .arena_shuffle(false)
            .with_pool(Arc::clone(&pool));
        let scoped = base.scoped_threads();

        let (budgeted_out, budgeted_report) =
            Pipeline::new().round(arena_round()).run(&inputs, &budgeted);
        let (classic_out, classic_report) =
            Pipeline::new().round(arena_round()).run(&inputs, &classic);
        let (scoped_out, scoped_report) =
            Pipeline::new().round(arena_round()).run(&inputs, &scoped);

        assert_eq!(budgeted_out, classic_out, "{context}");
        assert_eq!(budgeted_out, scoped_out, "{context}");
        assert_eq!(
            counters_sans_spill(&budgeted_report),
            counters_sans_spill(&classic_report),
            "{context}"
        );
        assert_eq!(
            counters_sans_spill(&budgeted_report),
            counters_sans_spill(&scoped_report),
            "{context}"
        );
        let spill = &budgeted_report.rounds[0].metrics;
        assert!(
            spill.spilled_bytes > 0 && spill.spill_runs > 0,
            "{context}: 30k records must overflow a 64 KiB budget \
             (spilled_bytes={}, spill_runs={})",
            spill.spilled_bytes,
            spill.spill_runs
        );
        // The executors that never had a budget never touched disk.
        assert_eq!(classic_report.rounds[0].metrics.spilled_bytes, 0);
        assert_eq!(scoped_report.rounds[0].metrics.spilled_bytes, 0);
    }
}

#[test]
fn global_pool_default_matches_scoped_threads_too() {
    // EngineConfig::default() routes through the process-global pool; no
    // explicit pool handle should be needed for parity.
    let inputs: Vec<u64> = (0..700).map(|i| i * 11 % 229).collect();
    for threads in THREAD_COUNTS {
        let (scoped_out, scoped_report) = Pipeline::new().round(counting_round(true)).run(
            &inputs,
            &EngineConfig::with_threads(threads).scoped_threads(),
        );
        let (pooled_out, pooled_report) = Pipeline::new()
            .round(counting_round(true))
            .run(&inputs, &EngineConfig::with_threads(threads));
        assert_eq!(pooled_out, scoped_out, "threads={threads}");
        assert_eq!(
            counters_of(&pooled_report),
            counters_of(&scoped_report),
            "threads={threads}"
        );
    }
}

#[test]
fn more_pool_workers_than_input_items() {
    let pool = Arc::new(WorkerPool::new(8));
    let inputs: Vec<u64> = vec![5, 9, 13];
    let config = EngineConfig::with_threads(8).with_pool(Arc::clone(&pool));
    let (outputs, report) = Pipeline::new()
        .round(counting_round(false))
        .run(&inputs, &config);
    let (scoped_outputs, scoped_report) = Pipeline::new()
        .round(counting_round(false))
        .run(&inputs, &EngineConfig::with_threads(8).scoped_threads());
    assert_eq!(outputs, scoped_outputs);
    assert_eq!(counters_of(&report), counters_of(&scoped_report));
    assert_eq!(report.rounds[0].metrics.input_records, 3);
}

#[test]
fn empty_input_pipeline_on_the_pool() {
    let pool = Arc::new(WorkerPool::new(2));
    let inputs: Vec<u64> = Vec::new();
    for threads in THREAD_COUNTS {
        let config = EngineConfig::with_threads(threads).with_pool(Arc::clone(&pool));
        let (outputs, report) = Pipeline::new()
            .round(counting_round(true))
            .run(&inputs, &config);
        assert!(outputs.is_empty());
        let metrics = &report.rounds[0].metrics;
        assert_eq!(metrics.key_value_pairs, 0);
        assert_eq!(metrics.shuffle_records, 0);
        assert_eq!(metrics.reducers_used, 0);
        assert_eq!(metrics.outputs, 0);
    }
}

#[test]
fn one_pool_serves_two_pipelines_of_different_types() {
    // Sequential reuse across rounds with *different* key/value layouts:
    // the buffer pool must recycle what it can and never corrupt a Vec.
    let pool = Arc::new(WorkerPool::new(2));
    let config = EngineConfig::with_threads(4).with_pool(Arc::clone(&pool));

    for _ in 0..3 {
        let numbers: Vec<u64> = (0..900).collect();
        let (mut counts, _) = Pipeline::new()
            .round(counting_round(true))
            .run(&numbers, &config);
        counts.sort_unstable();
        assert_eq!(counts.len(), 53);

        // Heap-backed keys (Vec<u32>) — a different element layout than the
        // u64 round above.
        let words = vec!["map", "reduce", "combine", "shuffle", "sort", "merge"];
        let (mut lengths, report) = Pipeline::new()
            .round(Round::new(
                "lengths",
                |w: &&str, ctx: &mut MapContext<Vec<u32>, u64>| ctx.emit(vec![w.len() as u32], 1),
                |k: &Vec<u32>, ones: &[u64], ctx: &mut ReduceContext<(u32, u64)>| {
                    ctx.emit((k[0], ones.iter().sum()))
                },
            ))
            .run(&words, &config);
        lengths.sort_unstable();
        assert_eq!(report.rounds[0].metrics.input_records, 6);
        assert_eq!(
            lengths.iter().map(|&(_, c)| c).sum::<u64>(),
            words.len() as u64
        );
    }
}

#[test]
fn planner_strategies_count_the_same_on_both_executors() {
    let graph = generators::gnm(300, 1200, 7);
    for threads in [1usize, 4] {
        let pooled = EnumerationRequest::named("triangle", &graph)
            .unwrap()
            .reducers(64)
            .engine(EngineConfig::with_threads(threads))
            .count()
            .unwrap();
        let scoped = EnumerationRequest::named("triangle", &graph)
            .unwrap()
            .reducers(64)
            .engine(EngineConfig::with_threads(threads).scoped_threads())
            .count()
            .unwrap();
        assert_eq!(pooled, scoped, "threads={threads}");
    }
}
