//! Differential test suite: every planner-selectable strategy against the
//! serial oracle (`enumerate_generic`) on seeded random graphs — G(n, p) and
//! power-law — across thread counts.
//!
//! The invariants pinned here are stronger than instance counts:
//!
//! 1. **Multiset equality** — the sorted instance list of every strategy
//!    equals the oracle's, for every `num_threads ∈ {1, 2, 8}`.
//! 2. **Determinism** — with `deterministic = true`, two runs of the same
//!    strategy at the same thread count return byte-identical instance
//!    streams (same order, not just the same set).
//! 3. **Combiner transparency** — the only strategy with a map-side combiner
//!    (the multiway join) returns an identical instance stream with combiners
//!    disabled, while shipping strictly more shuffle records.

use subgraph_mr::prelude::*;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// Every map-reduce strategy that applies to the pattern, with a reducer
/// budget that exercises a non-trivial bucket/share split.
fn mr_strategies(sample: &SampleGraph) -> Vec<(StrategyKind, usize)> {
    let mut kinds = vec![
        (StrategyKind::BucketOriented, 64),
        (StrategyKind::VariableOriented, 64),
        (StrategyKind::CqOriented, 32),
    ];
    if sample.num_nodes() == 3 && sample.num_edges() == 3 {
        kinds.extend([
            (StrategyKind::BucketOrderedTriangles, 220),
            (StrategyKind::PartitionTriangles, 220),
            (StrategyKind::MultiwayTriangles, 216),
            (StrategyKind::CascadeTriangles, 220),
        ]);
    }
    kinds
}

/// The serial strategies (run via the planner at budget `k`, ignored here in
/// favour of forcing each kind).
fn serial_strategies(sample: &SampleGraph) -> Vec<StrategyKind> {
    let mut kinds = vec![
        StrategyKind::SerialDecomposition,
        StrategyKind::SerialGeneric,
    ];
    if sample.is_connected() && sample.num_nodes() >= 2 {
        kinds.push(StrategyKind::SerialBoundedDegree);
    }
    kinds
}

fn test_graphs(seed: u64) -> Vec<(&'static str, DataGraph)> {
    vec![
        ("gnp", generators::gnp(48, 0.10, 5_000 + seed)),
        (
            "power-law",
            generators::power_law(70, 280, 2.3, 6_000 + seed),
        ),
    ]
}

fn sorted_instances(mut instances: Vec<Instance>) -> Vec<Instance> {
    instances.sort_unstable();
    instances
}

fn run(
    sample: &SampleGraph,
    graph: &DataGraph,
    kind: StrategyKind,
    k: usize,
    threads: usize,
) -> RunReport {
    EnumerationRequest::new(sample.clone(), graph)
        .reducers(k)
        .strategy(kind)
        .engine(EngineConfig::with_threads(threads))
        .plan()
        .unwrap_or_else(|e| panic!("{kind} should apply: {e}"))
        .execute()
}

#[test]
fn every_mr_strategy_matches_the_oracle_multiset_across_thread_counts() {
    for (case, sample) in [
        ("triangle", catalog::triangle()),
        ("square", catalog::square()),
        ("lollipop", catalog::lollipop()),
    ] {
        for seed in 0..2u64 {
            for (family, graph) in test_graphs(seed) {
                let oracle = sorted_instances(enumerate_generic(&sample, &graph).into_instances());
                for (kind, k) in mr_strategies(&sample) {
                    for threads in THREAD_COUNTS {
                        let report = run(&sample, &graph, kind, k, threads);
                        assert_eq!(
                            sorted_instances(report.into_instances()),
                            oracle,
                            "{case} {family} seed={seed} {kind} threads={threads}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn serial_strategies_match_the_oracle_multiset() {
    for (case, sample) in [
        ("triangle", catalog::triangle()),
        ("square", catalog::square()),
        ("lollipop", catalog::lollipop()),
    ] {
        for (family, graph) in test_graphs(3) {
            let oracle = sorted_instances(enumerate_generic(&sample, &graph).into_instances());
            for kind in serial_strategies(&sample) {
                let report = run(&sample, &graph, kind, 1, 1);
                assert_eq!(
                    sorted_instances(report.into_instances()),
                    oracle,
                    "{case} {family} {kind}"
                );
            }
        }
    }
}

#[test]
fn deterministic_mode_repeats_the_exact_instance_order() {
    let sample = catalog::triangle();
    for (family, graph) in test_graphs(7) {
        for (kind, k) in mr_strategies(&sample) {
            for threads in [2usize, 8] {
                let first = run(&sample, &graph, kind, k, threads);
                let second = run(&sample, &graph, kind, k, threads);
                // EngineConfig::with_threads defaults to deterministic = true:
                // the streams must agree in order, not merely as multisets.
                assert_eq!(
                    first.instances(),
                    second.instances(),
                    "{family} {kind} threads={threads}"
                );
            }
        }
    }
}

#[test]
fn multiway_combiner_is_transparent_to_the_result_stream() {
    let sample = catalog::triangle();
    for (family, graph) in test_graphs(11) {
        for threads in THREAD_COUNTS {
            let base = EnumerationRequest::new(sample.clone(), &graph)
                .reducers(216)
                .strategy(StrategyKind::MultiwayTriangles);
            let with = base
                .clone()
                .engine(EngineConfig::with_threads(threads))
                .plan()
                .unwrap()
                .execute();
            let without = base
                .engine(EngineConfig::with_threads(threads).combiners(false))
                .plan()
                .unwrap()
                .execute();
            assert_eq!(
                with.instances(),
                without.instances(),
                "{family} threads={threads}"
            );
            let with_metrics = with.metrics.as_ref().unwrap();
            let without_metrics = without.metrics.as_ref().unwrap();
            assert!(
                with_metrics.shuffle_records < without_metrics.shuffle_records,
                "{family} threads={threads}: combiner did not reduce the shuffle"
            );
            assert!(with_metrics.shuffle_bytes < without_metrics.shuffle_bytes);
            assert_eq!(
                with_metrics.key_value_pairs, without_metrics.key_value_pairs,
                "the combiner must not change what the mappers emit"
            );
        }
    }
}

#[test]
fn planner_choice_matches_the_oracle_on_both_graph_families() {
    // Let the planner pick freely (no override) and check the winner, too.
    for (case, sample) in [
        ("triangle", catalog::triangle()),
        ("square", catalog::square()),
    ] {
        for (family, graph) in test_graphs(13) {
            let oracle = sorted_instances(enumerate_generic(&sample, &graph).into_instances());
            for threads in THREAD_COUNTS {
                for k in [1usize, 96] {
                    let report = EnumerationRequest::new(sample.clone(), &graph)
                        .reducers(k)
                        .engine(EngineConfig::with_threads(threads))
                        .plan()
                        .unwrap()
                        .execute();
                    assert_eq!(
                        sorted_instances(report.into_instances()),
                        oracle,
                        "{case} {family} k={k} threads={threads}"
                    );
                }
            }
        }
    }
}
