//! Sink-parity suite: the streaming result path must be indistinguishable
//! from the legacy `Vec` path for every strategy.
//!
//! Pinned invariants, for every planner-selectable strategy at
//! `num_threads ∈ {1, 2, 8}` (deterministic seeded sweeps):
//!
//! 1. **CountSink** — the streamed count equals the collect path's
//!    `count()`, and every `JobMetrics` counter (records, bytes, reducers,
//!    work, skew) is byte-identical: the output destination must never
//!    change what the engine measures.
//! 2. **CollectSink** — streaming into a collector yields the same instance
//!    multiset as `execute()`.
//! 3. **Callback order** — under a deterministic engine config, an `FnSink`
//!    sees the exact instance order `execute()` returns.
//!
//! Plus the large-graph acceptance check: a count-only triangle run on a
//! graph with ≥ 1M edges goes through an *instrumented* sink that proves the
//! final round streamed through per-worker shards (no instance ever hit a
//! buffering `Vec` path) while matching the collect path's metrics.

use std::any::Any;
use std::cell::Cell;
use std::time::Duration;
use subgraph_mr::mapreduce::sink::SinkShard;
use subgraph_mr::prelude::*;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// Every strategy that applies to the pattern, with a budget exercising a
/// non-trivial bucket/share split (serial kinds carry budget 1).
fn strategies(sample: &SampleGraph) -> Vec<(StrategyKind, usize)> {
    let mut kinds = vec![
        (StrategyKind::BucketOriented, 64),
        (StrategyKind::VariableOriented, 64),
        (StrategyKind::CqOriented, 32),
        (StrategyKind::SerialDecomposition, 1),
        (StrategyKind::SerialGeneric, 1),
    ];
    if sample.is_connected() && sample.num_nodes() >= 2 {
        kinds.push((StrategyKind::SerialBoundedDegree, 1));
    }
    if sample.num_nodes() == 3 && sample.num_edges() == 3 {
        kinds.extend([
            (StrategyKind::BucketOrderedTriangles, 220),
            (StrategyKind::PartitionTriangles, 220),
            (StrategyKind::MultiwayTriangles, 216),
            (StrategyKind::CascadeTriangles, 220),
        ]);
    }
    kinds
}

fn patterns() -> Vec<(&'static str, SampleGraph)> {
    vec![
        ("triangle", catalog::triangle()),
        ("square", catalog::square()),
        ("lollipop", catalog::lollipop()),
    ]
}

fn plan_for<'g>(
    sample: &SampleGraph,
    graph: &'g DataGraph,
    kind: StrategyKind,
    k: usize,
    threads: usize,
) -> ExecutionPlan<'g> {
    EnumerationRequest::new(sample.clone(), graph)
        .reducers(k)
        .strategy(kind)
        .engine(EngineConfig::with_threads(threads))
        .plan()
        .unwrap_or_else(|e| panic!("{kind} should apply: {e}"))
}

/// `JobMetrics` with wall-clock timings zeroed so two runs compare counter
/// for counter.
fn counters(metrics: &JobMetrics) -> JobMetrics {
    let mut flat = metrics.clone();
    flat.map_time = Duration::ZERO;
    flat.partition_time = Duration::ZERO;
    flat.shuffle_time = Duration::ZERO;
    flat.reduce_time = Duration::ZERO;
    flat
}

fn assert_same_metrics(streamed: &RunReport, collected: &RunReport, context: &str) {
    assert_eq!(
        streamed.metrics.as_ref().map(counters),
        collected.metrics.as_ref().map(counters),
        "{context}: combined metrics diverge between sink and collect paths"
    );
    assert_eq!(
        streamed.round_metrics.len(),
        collected.round_metrics.len(),
        "{context}"
    );
    for (s, c) in streamed.round_metrics.iter().zip(&collected.round_metrics) {
        assert_eq!(s.name, c.name, "{context}");
        assert_eq!(
            counters(&s.metrics),
            counters(&c.metrics),
            "{context}: round {}",
            s.name
        );
    }
    assert_eq!(streamed.work, collected.work, "{context}");
    assert_eq!(streamed.rounds, collected.rounds, "{context}");
    assert_eq!(
        streamed.shuffle_bytes(),
        collected.shuffle_bytes(),
        "{context}"
    );
}

/// [`counters`] with the spill counters also flattened — for comparing a
/// budgeted run against an unbudgeted baseline, where the spill counters are
/// the one permitted difference.
fn counters_without_spill(metrics: &JobMetrics) -> JobMetrics {
    let mut flat = counters(metrics);
    flat.spilled_bytes = 0;
    flat.spill_runs = 0;
    flat.spill_read_secs = Duration::ZERO;
    flat
}

#[test]
fn count_sink_matches_the_collect_path_for_every_strategy() {
    for (name, sample) in patterns() {
        let graph = generators::gnp(48, 0.10, 5_100);
        for (kind, k) in strategies(&sample) {
            for threads in THREAD_COUNTS {
                let context = format!("{name} {kind} threads={threads}");
                let plan = plan_for(&sample, &graph, kind, k, threads);
                let collected = plan.execute();
                let counted = plan.count();
                assert!(counted.is_streamed(), "{context}");
                assert_eq!(counted.count(), collected.count(), "{context}");
                assert!(counted.instances().is_empty(), "{context}");
                assert_eq!(counted.verified_duplicates(), None, "{context}");
                assert_same_metrics(&counted, &collected, &context);
            }
        }
    }
}

#[test]
fn collect_sink_matches_the_collect_path_multiset() {
    for (name, sample) in patterns() {
        let graph = generators::power_law(70, 280, 2.3, 6_100);
        for (kind, k) in strategies(&sample) {
            for threads in THREAD_COUNTS {
                let context = format!("{name} {kind} threads={threads}");
                let plan = plan_for(&sample, &graph, kind, k, threads);
                let mut legacy = plan.execute().into_instances();
                let mut sink = CollectSink::new();
                let report = plan.run_with_sink(&mut sink);
                let mut streamed = sink.into_items();
                assert_eq!(report.count(), streamed.len(), "{context}");
                legacy.sort_unstable();
                streamed.sort_unstable();
                assert_eq!(streamed, legacy, "{context}");
            }
        }
    }
}

#[test]
fn fn_sink_sees_the_exact_deterministic_order() {
    // EngineConfig::with_threads defaults to deterministic = true: the
    // callback stream must equal the collect path's order, not just its set.
    for (name, sample) in patterns() {
        let graph = generators::gnp(44, 0.11, 7_100);
        for (kind, k) in strategies(&sample) {
            for threads in THREAD_COUNTS {
                let context = format!("{name} {kind} threads={threads}");
                let plan = plan_for(&sample, &graph, kind, k, threads);
                let legacy = plan.execute().into_instances();
                let mut seen = Vec::new();
                {
                    let mut sink = FnSink::new(|instance: Instance| seen.push(instance));
                    plan.run_with_sink(&mut sink);
                }
                assert_eq!(seen, legacy, "{context}");
            }
        }
    }
}

#[test]
fn arena_shuffle_matches_the_classic_shuffle_for_every_strategy() {
    // Every planner-selectable strategy, arena shuffle on vs off: identical
    // instance order and byte-identical counters at each thread count. This
    // pins that the serialized per-shard arenas change *how* records cross
    // the shuffle, never what arrives or what is measured.
    for (name, sample) in patterns() {
        let graph = generators::gnp(46, 0.10, 9_100);
        for (kind, k) in strategies(&sample) {
            for threads in THREAD_COUNTS {
                let context = format!("{name} {kind} threads={threads}");
                let arena = EnumerationRequest::new(sample.clone(), &graph)
                    .reducers(k)
                    .strategy(kind)
                    .engine(EngineConfig::with_threads(threads))
                    .plan()
                    .unwrap_or_else(|e| panic!("{kind} should apply: {e}"))
                    .execute();
                let classic = EnumerationRequest::new(sample.clone(), &graph)
                    .reducers(k)
                    .strategy(kind)
                    .engine(EngineConfig::with_threads(threads).arena_shuffle(false))
                    .plan()
                    .unwrap_or_else(|e| panic!("{kind} should apply: {e}"))
                    .execute();
                assert_eq!(arena.count(), classic.count(), "{context}");
                assert_eq!(arena.instances(), classic.instances(), "{context}");
                assert_same_metrics(&arena, &classic, &context);
            }
        }
    }
}

#[test]
fn a_forced_64k_budget_matches_the_unbudgeted_run_for_every_strategy() {
    // Every planner-selectable strategy under a 64 KiB shuffle memory budget:
    // identical instances, identical order, and every non-spill counter
    // byte-identical to the unbudgeted run. On this small graph most
    // combinations stay resident — which pins the other side of the contract:
    // a budget that is never exceeded must not change anything.
    for (name, sample) in patterns() {
        let graph = generators::gnp(46, 0.10, 9_100);
        for (kind, k) in strategies(&sample) {
            for threads in THREAD_COUNTS {
                let context = format!("{name} {kind} threads={threads} budget=64K");
                let run = |budget: usize| {
                    EnumerationRequest::new(sample.clone(), &graph)
                        .reducers(k)
                        .strategy(kind)
                        .engine(EngineConfig::with_threads(threads).memory_budget(budget))
                        .plan()
                        .unwrap_or_else(|e| panic!("{kind} should apply: {e}"))
                        .execute()
                };
                let base = run(0);
                let budgeted = run(64 << 10);
                assert_eq!(budgeted.count(), base.count(), "{context}");
                assert_eq!(budgeted.instances(), base.instances(), "{context}");
                assert_eq!(
                    budgeted.metrics.as_ref().map(counters_without_spill),
                    base.metrics.as_ref().map(counters_without_spill),
                    "{context}"
                );
                assert_eq!(
                    base.metrics.as_ref().map_or(0, |m| m.spilled_bytes),
                    0,
                    "{context}: the unbudgeted run must never touch disk"
                );
            }
        }
    }
}

#[test]
fn a_64k_budget_really_spills_on_a_shuffle_heavy_run_and_stays_identical() {
    // A triangle workload whose arena bytes dwarf the budget: every CI run
    // exercises seal → spill → merge, and the merged answer is byte-identical
    // to the in-memory one.
    let graph = generators::gnm(240, 3_600, 9_300);
    for threads in [2usize, 8] {
        let context = format!("threads={threads} budget=64K");
        let run = |budget: usize| {
            EnumerationRequest::named("triangle", &graph)
                .unwrap()
                .reducers(220)
                .strategy(StrategyKind::BucketOrderedTriangles)
                .engine(EngineConfig::with_threads(threads).memory_budget(budget))
                .plan()
                .unwrap()
                .execute()
        };
        let base = run(0);
        let budgeted = run(64 << 10);
        assert_eq!(budgeted.count(), base.count(), "{context}");
        assert_eq!(budgeted.instances(), base.instances(), "{context}");
        assert_eq!(
            budgeted.metrics.as_ref().map(counters_without_spill),
            base.metrics.as_ref().map(counters_without_spill),
            "{context}"
        );
        let spill = budgeted.metrics.as_ref().unwrap();
        assert!(
            spill.spilled_bytes > 0 && spill.spill_runs > 0,
            "{context}: a 64 KiB budget must spill this workload \
             (spilled_bytes={}, spill_runs={})",
            spill.spilled_bytes,
            spill.spill_runs
        );
        assert_eq!(base.metrics.as_ref().unwrap().spilled_bytes, 0, "{context}");
    }
}

// ---- the large-graph acceptance check --------------------------------------

/// A counting sink that records how its records arrived: per-worker shards
/// (`shards_created` / `folds`) versus direct `accept` calls (which would
/// mean something buffered and replayed — the default `BufferShard` path).
#[derive(Default)]
struct InstrumentedCountSink {
    count: usize,
    shards_created: Cell<usize>,
    folds: usize,
    direct_accepts: usize,
}

struct InstrumentedShard(usize);

impl SinkShard<Instance> for InstrumentedShard {
    fn accept(&mut self, _instance: Instance) {
        self.0 += 1;
    }
    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

impl OutputSink<Instance> for InstrumentedCountSink {
    fn accept(&mut self, _instance: Instance) {
        self.direct_accepts += 1;
        self.count += 1;
    }
    fn new_shard(&self) -> Box<dyn SinkShard<Instance>> {
        self.shards_created.set(self.shards_created.get() + 1);
        Box::new(InstrumentedShard(0))
    }
    fn fold(&mut self, shard: Box<dyn SinkShard<Instance>>) {
        let shard = shard
            .into_any()
            .downcast::<InstrumentedShard>()
            .expect("the engine folds back the shards this sink created");
        self.folds += 1;
        self.count += shard.0;
    }
}

/// The ISSUE's acceptance criterion: a count-only triangle run on a graph
/// with ≥ 1M edges performs zero `Vec<Instance>` materialization on the
/// final round — every instance reaches the sink through a per-worker
/// constant-memory shard, never through a buffering `accept` replay — while
/// every `JobMetrics` counter and byte total is identical to the collect
/// path.
#[test]
fn count_mode_streams_a_million_edge_graph_without_materializing() {
    let graph = generators::gnm(1_200_000, 1_000_000, 20_260_731);
    assert!(graph.num_edges() >= 1_000_000);
    let threads = 2usize;
    let plan = EnumerationRequest::named("triangle", &graph)
        .unwrap()
        .reducers(64)
        .engine(EngineConfig::with_threads(threads))
        .plan()
        .unwrap();

    let mut sink = InstrumentedCountSink::default();
    let streamed = plan.run_with_sink(&mut sink);
    assert!(streamed.is_streamed());
    assert_eq!(streamed.count(), sink.count);
    // Every instance arrived through a worker shard; nothing was buffered
    // and replayed through accept().
    assert_eq!(sink.direct_accepts, 0, "an instance took a buffering path");
    assert_eq!(sink.shards_created.get(), threads);
    assert_eq!(sink.folds, sink.shards_created.get());

    // The collect path agrees on the count and on every measured counter.
    let collected = plan.execute();
    assert_eq!(collected.count(), streamed.count());
    assert_eq!(collected.verified_duplicates(), Some(0));
    assert_same_metrics(&streamed, &collected, "1M-edge count mode");
    // The shuffle really ran at scale. On a near-forest graph the planner is
    // free to pick the cascade (3m + wedges beats the bucket schemes' 6m);
    // every triangle strategy ships at least 3 copies of each of the ≥ 1M
    // edges.
    assert!(streamed.communication() >= 3 * graph.num_edges());
}
